/**
 * @file
 * Window functions for spectral estimation.
 */

#ifndef SAVAT_DSP_WINDOW_HH
#define SAVAT_DSP_WINDOW_HH

#include <string>
#include <vector>

namespace savat::dsp {

/** Supported window shapes. */
enum class WindowKind {
    Rectangular,
    Hann,
    Hamming,
    Blackman,
    BlackmanHarris,
    FlatTop
};

/** Display name ("hann", ...). */
const char *windowName(WindowKind kind);

/** Generate an n-point symmetric window of the given kind. */
std::vector<double> makeWindow(WindowKind kind, std::size_t n);

/**
 * Write an n-point symmetric window into caller-provided storage
 * (e.g. an arena buffer); identical samples to makeWindow().
 */
void makeWindowInto(WindowKind kind, double *out, std::size_t n);

/**
 * Coherent gain: mean of the window samples. An amplitude estimate
 * through a window must be divided by this to be unbiased.
 */
double coherentGain(const std::vector<double> &window);

/**
 * Noise-equivalent bandwidth in bins:
 * N * sum(w^2) / (sum w)^2. Needed to convert windowed periodogram
 * values into power spectral density.
 */
double noiseBandwidthBins(const std::vector<double> &window);

} // namespace savat::dsp

#endif // SAVAT_DSP_WINDOW_HH
