/**
 * @file
 * SSE2 (128-bit, 2 doubles/lane-pair) kernels. Each kernel replicates
 * the scalar reference's per-lane operation sequence exactly -- see
 * simd.cc and DESIGN.md §5h for the contract. Built without FMA and
 * with -ffp-contract=off so no intermediate rounding is fused away.
 */

#include "dsp/simd_detail.hh"

#if SAVAT_SIMD_X86 && defined(__SSE2__)

#include <emmintrin.h>

#include <cmath>

namespace savat::dsp::simd::detail {
namespace {

double
sumSse2(const double *x, std::size_t n)
{
    __m128d acc01 = _mm_setzero_pd();
    __m128d acc23 = _mm_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        acc01 = _mm_add_pd(acc01, _mm_loadu_pd(x + i));
        acc23 = _mm_add_pd(acc23, _mm_loadu_pd(x + i + 2));
    }
    double a[4];
    _mm_storeu_pd(a + 0, acc01);
    _mm_storeu_pd(a + 2, acc23);
    if (i < n)
        a[0] += x[i++];
    if (i < n)
        a[1] += x[i++];
    if (i < n)
        a[2] += x[i++];
    return (a[0] + a[1]) + (a[2] + a[3]);
}

double
sumSquaresSse2(const double *x, std::size_t n)
{
    __m128d acc01 = _mm_setzero_pd();
    __m128d acc23 = _mm_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128d v01 = _mm_loadu_pd(x + i);
        const __m128d v23 = _mm_loadu_pd(x + i + 2);
        acc01 = _mm_add_pd(acc01, _mm_mul_pd(v01, v01));
        acc23 = _mm_add_pd(acc23, _mm_mul_pd(v23, v23));
    }
    double a[4];
    _mm_storeu_pd(a + 0, acc01);
    _mm_storeu_pd(a + 2, acc23);
    if (i < n) {
        a[0] += x[i] * x[i];
        ++i;
    }
    if (i < n) {
        a[1] += x[i] * x[i];
        ++i;
    }
    if (i < n) {
        a[2] += x[i] * x[i];
        ++i;
    }
    return (a[0] + a[1]) + (a[2] + a[3]);
}

void
axpySse2(double a, const double *x, double *y, std::size_t n)
{
    const __m128d av = _mm_set1_pd(a);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d yv = _mm_loadu_pd(y + i);
        const __m128d xv = _mm_loadu_pd(x + i);
        _mm_storeu_pd(y + i,
                      _mm_add_pd(yv, _mm_mul_pd(av, xv)));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

/** 2-lane negLog; per-lane ops match simd.cc's negLog exactly. */
__m128d
negLog2(__m128d u)
{
    const __m128i bits = _mm_castpd_si128(u);
    const __m128i rawExp = _mm_and_si128(
        _mm_srli_epi64(bits, 52), _mm_set1_epi64x(0x7FF));
    // Exact int->double: (2^52 | exp) - 2^52, then - 1023.
    const __m128d expd = _mm_sub_pd(
        _mm_castsi128_pd(_mm_or_si128(
            rawExp, _mm_set1_epi64x(0x4330000000000000ll))),
        _mm_set1_pd(4503599627370496.0));
    __m128d e = _mm_sub_pd(expd, _mm_set1_pd(1023.0));
    __m128d m = _mm_castsi128_pd(_mm_or_si128(
        _mm_and_si128(bits, _mm_set1_epi64x(0xFFFFFFFFFFFFFll)),
        _mm_set1_epi64x(0x3FF0000000000000ll)));
    const __m128d big = _mm_cmpgt_pd(m, _mm_set1_pd(kSqrt2));
    const __m128d mHalf = _mm_mul_pd(m, _mm_set1_pd(0.5));
    m = _mm_or_pd(_mm_and_pd(big, mHalf), _mm_andnot_pd(big, m));
    e = _mm_add_pd(e, _mm_and_pd(big, _mm_set1_pd(1.0)));
    const __m128d one = _mm_set1_pd(1.0);
    const __m128d z =
        _mm_div_pd(_mm_sub_pd(m, one), _mm_add_pd(m, one));
    const __m128d z2 = _mm_mul_pd(z, z);
    __m128d t = _mm_set1_pd(kAtanh[0]);
    for (int k = 1; k < 10; ++k)
        t = _mm_add_pd(_mm_mul_pd(t, z2), _mm_set1_pd(kAtanh[k]));
    const __m128d lm = _mm_add_pd(
        _mm_mul_pd(_mm_set1_pd(2.0), z),
        _mm_mul_pd(z, _mm_mul_pd(z2, _mm_mul_pd(_mm_set1_pd(2.0), t))));
    const __m128d res = _mm_add_pd(
        _mm_add_pd(lm, _mm_mul_pd(_mm_set1_pd(kLn2Lo), e)),
        _mm_mul_pd(_mm_set1_pd(kLn2Hi), e));
    return _mm_xor_pd(res, _mm_set1_pd(-0.0));
}

void
negLogAccumSse2(double a, const double *u, double *y, std::size_t n)
{
    const __m128d av = _mm_set1_pd(a);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d nl = negLog2(_mm_loadu_pd(u + i));
        const __m128d yv = _mm_loadu_pd(y + i);
        _mm_storeu_pd(y + i, _mm_add_pd(yv, _mm_mul_pd(av, nl)));
    }
    for (; i < n; ++i)
        y[i] += a * negLog(u[i]);
}

void
windowComplexSse2(const double *seg, const double *win, Complex *out,
                  std::size_t n)
{
    auto *o = reinterpret_cast<double *>(out);
    const __m128d zero = _mm_setzero_pd();
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d p =
            _mm_mul_pd(_mm_loadu_pd(seg + i), _mm_loadu_pd(win + i));
        _mm_storeu_pd(o + 2 * i, _mm_unpacklo_pd(p, zero));
        _mm_storeu_pd(o + 2 * i + 2, _mm_unpackhi_pd(p, zero));
    }
    for (; i < n; ++i)
        out[i] = Complex(seg[i] * win[i], 0.0);
}

void
accumPsdSse2(const Complex *buf, double s, double *acc, std::size_t n)
{
    const auto *b = reinterpret_cast<const double *>(buf);
    const __m128d sv = _mm_set1_pd(s);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d c0 = _mm_loadu_pd(b + 2 * i);     // [r0 i0]
        const __m128d c1 = _mm_loadu_pd(b + 2 * i + 2); // [r1 i1]
        const __m128d re = _mm_unpacklo_pd(c0, c1);     // [r0 r1]
        const __m128d im = _mm_unpackhi_pd(c0, c1);     // [i0 i1]
        const __m128d norm = _mm_add_pd(_mm_mul_pd(re, re),
                                        _mm_mul_pd(im, im));
        const __m128d av = _mm_loadu_pd(acc + i);
        _mm_storeu_pd(acc + i,
                      _mm_add_pd(av, _mm_mul_pd(norm, sv)));
    }
    for (; i < n; ++i) {
        const double re = buf[i].real();
        const double im = buf[i].imag();
        acc[i] += (re * re + im * im) * s;
    }
}

void
fftStageSse2(Complex *data, const Complex *w, std::size_t n,
             std::size_t len)
{
    const std::size_t half = len / 2;
    const __m128d flipLo = _mm_set_pd(0.0, -0.0);
    const auto *wd = reinterpret_cast<const double *>(w);
    for (std::size_t i = 0; i < n; i += len) {
        auto *lo = reinterpret_cast<double *>(data + i);
        auto *hi = lo + 2 * half;
        for (std::size_t k = 0; k < half; ++k) {
            const __m128d wk = _mm_loadu_pd(wd + 2 * k);
            const __m128d wr = _mm_unpacklo_pd(wk, wk);
            const __m128d wi = _mm_unpackhi_pd(wk, wk);
            const __m128d v = _mm_loadu_pd(hi + 2 * k);
            const __m128d vswap =
                _mm_shuffle_pd(v, v, 1); // [vi vr]
            // naive product: [vr*wr - vi*wi, vi*wr + vr*wi]
            const __m128d prod = _mm_add_pd(
                _mm_mul_pd(v, wr),
                _mm_xor_pd(_mm_mul_pd(vswap, wi), flipLo));
            const __m128d u = _mm_loadu_pd(lo + 2 * k);
            _mm_storeu_pd(lo + 2 * k, _mm_add_pd(u, prod));
            _mm_storeu_pd(hi + 2 * k, _mm_sub_pd(u, prod));
        }
    }
}

Complex
toneDftSse2(const double *x, std::size_t n, Complex step)
{
    // Lane seeds and step^4, computed with the scalar reference code.
    double pr[4], pi[4];
    pr[0] = 1.0;
    pi[0] = 0.0;
    pr[1] = step.real();
    pi[1] = step.imag();
    pr[2] = pr[1] * pr[1] - pi[1] * pi[1];
    pi[2] = pr[1] * pi[1] + pi[1] * pr[1];
    pr[3] = pr[2] * pr[1] - pi[2] * pi[1];
    pi[3] = pr[2] * pi[1] + pi[2] * pr[1];
    const double sr = pr[2] * pr[2] - pi[2] * pi[2];
    const double si = pr[2] * pi[2] + pi[2] * pr[2];

    __m128d pr01 = _mm_loadu_pd(pr + 0);
    __m128d pr23 = _mm_loadu_pd(pr + 2);
    __m128d pi01 = _mm_loadu_pd(pi + 0);
    __m128d pi23 = _mm_loadu_pd(pi + 2);
    const __m128d srv = _mm_set1_pd(sr);
    const __m128d siv = _mm_set1_pd(si);
    __m128d ar01 = _mm_setzero_pd();
    __m128d ar23 = _mm_setzero_pd();
    __m128d ai01 = _mm_setzero_pd();
    __m128d ai23 = _mm_setzero_pd();

    std::size_t i = 0;
    std::size_t block = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128d x01 = _mm_loadu_pd(x + i);
        const __m128d x23 = _mm_loadu_pd(x + i + 2);
        ar01 = _mm_add_pd(ar01, _mm_mul_pd(x01, pr01));
        ar23 = _mm_add_pd(ar23, _mm_mul_pd(x23, pr23));
        ai01 = _mm_add_pd(ai01, _mm_mul_pd(x01, pi01));
        ai23 = _mm_add_pd(ai23, _mm_mul_pd(x23, pi23));
        const __m128d nr01 = _mm_sub_pd(_mm_mul_pd(pr01, srv),
                                        _mm_mul_pd(pi01, siv));
        const __m128d ni01 = _mm_add_pd(_mm_mul_pd(pr01, siv),
                                        _mm_mul_pd(pi01, srv));
        const __m128d nr23 = _mm_sub_pd(_mm_mul_pd(pr23, srv),
                                        _mm_mul_pd(pi23, siv));
        const __m128d ni23 = _mm_add_pd(_mm_mul_pd(pr23, siv),
                                        _mm_mul_pd(pi23, srv));
        pr01 = nr01;
        pi01 = ni01;
        pr23 = nr23;
        pi23 = ni23;
        if (++block == kDftRenormBlock) {
            block = 0;
            const __m128d m01 =
                _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(pr01, pr01),
                                       _mm_mul_pd(pi01, pi01)));
            const __m128d m23 =
                _mm_sqrt_pd(_mm_add_pd(_mm_mul_pd(pr23, pr23),
                                       _mm_mul_pd(pi23, pi23)));
            pr01 = _mm_div_pd(pr01, m01);
            pi01 = _mm_div_pd(pi01, m01);
            pr23 = _mm_div_pd(pr23, m23);
            pi23 = _mm_div_pd(pi23, m23);
        }
    }
    double ar[4], ai[4];
    _mm_storeu_pd(ar + 0, ar01);
    _mm_storeu_pd(ar + 2, ar23);
    _mm_storeu_pd(ai + 0, ai01);
    _mm_storeu_pd(ai + 2, ai23);
    _mm_storeu_pd(pr + 0, pr01);
    _mm_storeu_pd(pr + 2, pr23);
    _mm_storeu_pd(pi + 0, pi01);
    _mm_storeu_pd(pi + 2, pi23);
    for (int j = 0; i < n; ++i, ++j) {
        ar[j] += x[i] * pr[j];
        ai[j] += x[i] * pi[j];
    }
    return {(ar[0] + ar[1]) + (ar[2] + ar[3]),
            (ai[0] + ai[1]) + (ai[2] + ai[3])};
}

} // namespace

bool
sse2Compiled()
{
    return true;
}

const Kernels &
sse2Kernels()
{
    static const Kernels table = {
        sumSse2,        sumSquaresSse2, axpySse2,
        negLogAccumSse2, windowComplexSse2, accumPsdSse2,
        fftStageSse2,   toneDftSse2,
    };
    return table;
}

} // namespace savat::dsp::simd::detail

#else // !SAVAT_SIMD_X86 || !__SSE2__

namespace savat::dsp::simd::detail {

bool
sse2Compiled()
{
    return false;
}

const Kernels &
sse2Kernels()
{
    return scalarKernels();
}

} // namespace savat::dsp::simd::detail

#endif
