/**
 * @file
 * Fast Fourier transform and single-bin DFT (Goertzel) primitives.
 */

#ifndef SAVAT_DSP_FFT_HH
#define SAVAT_DSP_FFT_HH

#include <complex>
#include <vector>

namespace savat::dsp {

using Complex = std::complex<double>;

/**
 * In-place iterative radix-2 decimation-in-time FFT.
 * Size must be a power of two.
 *
 * @param data    Samples, replaced by the spectrum.
 * @param inverse When true computes the (unnormalized) inverse
 *                transform; divide by N yourself if needed.
 */
void fft(std::vector<Complex> &data, bool inverse = false);

/** In-place FFT over a raw buffer (size must be a power of two). */
void fft(Complex *data, std::size_t n, bool inverse = false);

/** Out-of-place convenience wrapper around fft(). */
std::vector<Complex> fftCopy(const std::vector<Complex> &data,
                             bool inverse = false);

/**
 * FFT of a real signal, zero-padded to the next power of two.
 * Returns the full complex spectrum of the padded length.
 */
std::vector<Complex> realFft(const std::vector<double> &data);

/** Smallest power of two >= n (n >= 1). */
std::size_t nextPowerOfTwo(std::size_t n);

/**
 * Goertzel-style single-frequency DFT at an arbitrary (non-integer)
 * normalized frequency.
 *
 * Computes sum_n x[n] * exp(-j*2*pi*freq*n) / N, i.e. the complex
 * amplitude of the component at `freq` cycles per sample. For a pure
 * cosine of peak amplitude A at that frequency the result has
 * magnitude A/2.
 */
Complex singleBinDft(const std::vector<double> &data, double freq);

/** Raw-buffer overload of singleBinDft(). */
Complex singleBinDft(const double *data, std::size_t n, double freq);

/**
 * Peak amplitude estimate of the component at normalized frequency
 * `freq`: 2 * |singleBinDft|.
 */
double toneAmplitude(const std::vector<double> &data, double freq);

} // namespace savat::dsp

#endif // SAVAT_DSP_FFT_HH
