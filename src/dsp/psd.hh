/**
 * @file
 * Power spectral density estimation and band-power integration.
 */

#ifndef SAVAT_DSP_PSD_HH
#define SAVAT_DSP_PSD_HH

#include <vector>

#include "dsp/window.hh"
#include "support/units.hh"

namespace savat::support {
class Arena;
} // namespace savat::support

namespace savat::dsp {

/**
 * A one-sided power spectral density estimate.
 *
 * bins[i] is the PSD (power per hertz) at frequency i * binHz.
 */
struct PsdEstimate
{
    double binHz = 0.0;
    std::vector<double> bins;

    std::size_t size() const { return bins.size(); }

    /** Frequency of bin i. */
    double frequency(std::size_t i) const
    {
        return static_cast<double>(i) * binHz;
    }

    /** Index of the bin nearest the given frequency. */
    std::size_t nearestBin(double freq_hz) const;

    /**
     * Total power in [lo, hi] (inclusive of partial edge bins),
     * integrating PSD * bin width.
     */
    double bandPower(double lo_hz, double hi_hz) const;

    /** Index of the largest bin within [lo, hi]. */
    std::size_t peakBin(double lo_hz, double hi_hz) const;
};

/**
 * Welch's method: average modified periodograms over 50 %-overlapped
 * segments.
 *
 * @param samples    Real signal.
 * @param sampleRate Sample rate in Hz.
 * @param segmentLen Segment length (rounded up to a power of two).
 * @param kind       Window applied to each segment.
 */
PsdEstimate welchPsd(const std::vector<double> &samples, double sampleRate,
                     std::size_t segmentLen,
                     WindowKind kind = WindowKind::Hann);

/**
 * welchPsd() with caller-provided scratch: the segment copy, window
 * and FFT workspace come from the arena instead of fresh heap
 * allocations. The arena is NOT reset here; the caller owns its
 * lifecycle (reset once per rep).
 */
PsdEstimate welchPsd(const std::vector<double> &samples, double sampleRate,
                     std::size_t segmentLen, WindowKind kind,
                     support::Arena &scratch);

/**
 * Single periodogram of the full signal (rectangular window by
 * default); convenience wrapper for short signals.
 */
PsdEstimate periodogram(const std::vector<double> &samples,
                        double sampleRate,
                        WindowKind kind = WindowKind::Rectangular);

/** periodogram() with caller-provided scratch (see welchPsd()). */
PsdEstimate periodogram(const std::vector<double> &samples,
                        double sampleRate, WindowKind kind,
                        support::Arena &scratch);

} // namespace savat::dsp

#endif // SAVAT_DSP_PSD_HH
