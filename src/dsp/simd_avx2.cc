/**
 * @file
 * AVX2 (256-bit, 4 doubles) kernels. Each kernel replicates the
 * scalar reference's per-lane operation sequence exactly -- see
 * simd.cc and DESIGN.md §5h. This TU is compiled with -mavx2 but
 * WITHOUT FMA and with -ffp-contract=off: a fused multiply-add
 * would skip an intermediate rounding and break the cross-level
 * byte-identity of the campaign matrix.
 */

#include "dsp/simd_detail.hh"

#if SAVAT_SIMD_X86 && defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

namespace savat::dsp::simd::detail {
namespace {

double
sumAvx2(const double *x, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
    double a[4];
    _mm256_storeu_pd(a, acc);
    if (i < n)
        a[0] += x[i++];
    if (i < n)
        a[1] += x[i++];
    if (i < n)
        a[2] += x[i++];
    return (a[0] + a[1]) + (a[2] + a[3]);
}

double
sumSquaresAvx2(const double *x, std::size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_loadu_pd(x + i);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
    }
    double a[4];
    _mm256_storeu_pd(a, acc);
    if (i < n) {
        a[0] += x[i] * x[i];
        ++i;
    }
    if (i < n) {
        a[1] += x[i] * x[i];
        ++i;
    }
    if (i < n) {
        a[2] += x[i] * x[i];
        ++i;
    }
    return (a[0] + a[1]) + (a[2] + a[3]);
}

void
axpyAvx2(double a, const double *x, double *y, std::size_t n)
{
    const __m256d av = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d yv = _mm256_loadu_pd(y + i);
        const __m256d xv = _mm256_loadu_pd(x + i);
        _mm256_storeu_pd(y + i,
                         _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

/** 4-lane negLog; per-lane ops match simd.cc's negLog exactly. */
__m256d
negLog4(__m256d u)
{
    const __m256i bits = _mm256_castpd_si256(u);
    const __m256i rawExp = _mm256_and_si256(
        _mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(0x7FF));
    // Exact int->double: (2^52 | exp) - 2^52, then - 1023.
    const __m256d expd = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(
            rawExp, _mm256_set1_epi64x(0x4330000000000000ll))),
        _mm256_set1_pd(4503599627370496.0));
    __m256d e = _mm256_sub_pd(expd, _mm256_set1_pd(1023.0));
    __m256d m = _mm256_castsi256_pd(_mm256_or_si256(
        _mm256_and_si256(bits, _mm256_set1_epi64x(0xFFFFFFFFFFFFFll)),
        _mm256_set1_epi64x(0x3FF0000000000000ll)));
    const __m256d big =
        _mm256_cmp_pd(m, _mm256_set1_pd(kSqrt2), _CMP_GT_OQ);
    m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)),
                         big);
    e = _mm256_add_pd(e, _mm256_and_pd(big, _mm256_set1_pd(1.0)));
    const __m256d one = _mm256_set1_pd(1.0);
    const __m256d z =
        _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
    const __m256d z2 = _mm256_mul_pd(z, z);
    __m256d t = _mm256_set1_pd(kAtanh[0]);
    for (int k = 1; k < 10; ++k)
        t = _mm256_add_pd(_mm256_mul_pd(t, z2),
                          _mm256_set1_pd(kAtanh[k]));
    const __m256d lm = _mm256_add_pd(
        _mm256_mul_pd(_mm256_set1_pd(2.0), z),
        _mm256_mul_pd(
            z, _mm256_mul_pd(
                   z2, _mm256_mul_pd(_mm256_set1_pd(2.0), t))));
    const __m256d res = _mm256_add_pd(
        _mm256_add_pd(lm, _mm256_mul_pd(_mm256_set1_pd(kLn2Lo), e)),
        _mm256_mul_pd(_mm256_set1_pd(kLn2Hi), e));
    return _mm256_xor_pd(res, _mm256_set1_pd(-0.0));
}

void
negLogAccumAvx2(double a, const double *u, double *y, std::size_t n)
{
    const __m256d av = _mm256_set1_pd(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d nl = negLog4(_mm256_loadu_pd(u + i));
        const __m256d yv = _mm256_loadu_pd(y + i);
        _mm256_storeu_pd(y + i,
                         _mm256_add_pd(yv, _mm256_mul_pd(av, nl)));
    }
    for (; i < n; ++i)
        y[i] += a * negLog(u[i]);
}

void
windowComplexAvx2(const double *seg, const double *win, Complex *out,
                  std::size_t n)
{
    auto *o = reinterpret_cast<double *>(out);
    const __m256d zero = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d p = _mm256_mul_pd(_mm256_loadu_pd(seg + i),
                                        _mm256_loadu_pd(win + i));
        const __m256d lo = _mm256_unpacklo_pd(p, zero); // p0 0 p2 0
        const __m256d hi = _mm256_unpackhi_pd(p, zero); // p1 0 p3 0
        _mm256_storeu_pd(o + 2 * i,
                         _mm256_permute2f128_pd(lo, hi, 0x20));
        _mm256_storeu_pd(o + 2 * i + 4,
                         _mm256_permute2f128_pd(lo, hi, 0x31));
    }
    for (; i < n; ++i)
        out[i] = Complex(seg[i] * win[i], 0.0);
}

void
accumPsdAvx2(const Complex *buf, double s, double *acc, std::size_t n)
{
    const auto *b = reinterpret_cast<const double *>(buf);
    const __m256d sv = _mm256_set1_pd(s);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d c01 = _mm256_loadu_pd(b + 2 * i);     // r0 i0 r1 i1
        const __m256d c23 = _mm256_loadu_pd(b + 2 * i + 4); // r2 i2 r3 i3
        const __m256d sq01 = _mm256_mul_pd(c01, c01);
        const __m256d sq23 = _mm256_mul_pd(c23, c23);
        // hadd -> [n0 n2 n1 n3]; permute back to [n0 n1 n2 n3].
        const __m256d h = _mm256_hadd_pd(sq01, sq23);
        const __m256d norm = _mm256_permute4x64_pd(h, 0xD8);
        const __m256d av = _mm256_loadu_pd(acc + i);
        _mm256_storeu_pd(
            acc + i, _mm256_add_pd(av, _mm256_mul_pd(norm, sv)));
    }
    for (; i < n; ++i) {
        const double re = buf[i].real();
        const double im = buf[i].imag();
        acc[i] += (re * re + im * im) * s;
    }
}

void
fftStageAvx2(Complex *data, const Complex *w, std::size_t n,
             std::size_t len)
{
    const std::size_t half = len / 2;
    const auto *wd = reinterpret_cast<const double *>(w);
    for (std::size_t i = 0; i < n; i += len) {
        auto *lo = reinterpret_cast<double *>(data + i);
        auto *hi = lo + 2 * half;
        std::size_t k = 0;
        for (; k + 2 <= half; k += 2) {
            const __m256d wk = _mm256_loadu_pd(wd + 2 * k);
            const __m256d wr = _mm256_movedup_pd(wk);
            const __m256d wi = _mm256_permute_pd(wk, 0xF);
            const __m256d v = _mm256_loadu_pd(hi + 2 * k);
            const __m256d vswap = _mm256_permute_pd(v, 0x5);
            // addsub -> [vr*wr - vi*wi, vi*wr + vr*wi] per complex
            const __m256d prod = _mm256_addsub_pd(
                _mm256_mul_pd(v, wr), _mm256_mul_pd(vswap, wi));
            const __m256d u = _mm256_loadu_pd(lo + 2 * k);
            _mm256_storeu_pd(lo + 2 * k, _mm256_add_pd(u, prod));
            _mm256_storeu_pd(hi + 2 * k, _mm256_sub_pd(u, prod));
        }
        for (; k < half; ++k) {
            const double hr = hi[2 * k], hii = hi[2 * k + 1];
            const double wkr = wd[2 * k], wki = wd[2 * k + 1];
            const double vr = hr * wkr - hii * wki;
            const double vi = hr * wki + hii * wkr;
            const double ur = lo[2 * k], ui = lo[2 * k + 1];
            lo[2 * k] = ur + vr;
            lo[2 * k + 1] = ui + vi;
            hi[2 * k] = ur - vr;
            hi[2 * k + 1] = ui - vi;
        }
    }
}

Complex
toneDftAvx2(const double *x, std::size_t n, Complex step)
{
    // Lane seeds and step^4, computed with the scalar reference code.
    double pr[4], pi[4];
    pr[0] = 1.0;
    pi[0] = 0.0;
    pr[1] = step.real();
    pi[1] = step.imag();
    pr[2] = pr[1] * pr[1] - pi[1] * pi[1];
    pi[2] = pr[1] * pi[1] + pi[1] * pr[1];
    pr[3] = pr[2] * pr[1] - pi[2] * pi[1];
    pi[3] = pr[2] * pi[1] + pi[2] * pr[1];
    const double sr = pr[2] * pr[2] - pi[2] * pi[2];
    const double si = pr[2] * pi[2] + pi[2] * pr[2];

    __m256d prv = _mm256_loadu_pd(pr);
    __m256d piv = _mm256_loadu_pd(pi);
    const __m256d srv = _mm256_set1_pd(sr);
    const __m256d siv = _mm256_set1_pd(si);
    __m256d arv = _mm256_setzero_pd();
    __m256d aiv = _mm256_setzero_pd();

    std::size_t i = 0;
    std::size_t block = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d xv = _mm256_loadu_pd(x + i);
        arv = _mm256_add_pd(arv, _mm256_mul_pd(xv, prv));
        aiv = _mm256_add_pd(aiv, _mm256_mul_pd(xv, piv));
        const __m256d nr = _mm256_sub_pd(_mm256_mul_pd(prv, srv),
                                         _mm256_mul_pd(piv, siv));
        const __m256d ni = _mm256_add_pd(_mm256_mul_pd(prv, siv),
                                         _mm256_mul_pd(piv, srv));
        prv = nr;
        piv = ni;
        if (++block == kDftRenormBlock) {
            block = 0;
            const __m256d mag = _mm256_sqrt_pd(
                _mm256_add_pd(_mm256_mul_pd(prv, prv),
                              _mm256_mul_pd(piv, piv)));
            prv = _mm256_div_pd(prv, mag);
            piv = _mm256_div_pd(piv, mag);
        }
    }
    double ar[4], ai[4];
    _mm256_storeu_pd(ar, arv);
    _mm256_storeu_pd(ai, aiv);
    _mm256_storeu_pd(pr, prv);
    _mm256_storeu_pd(pi, piv);
    for (int j = 0; i < n; ++i, ++j) {
        ar[j] += x[i] * pr[j];
        ai[j] += x[i] * pi[j];
    }
    return {(ar[0] + ar[1]) + (ar[2] + ar[3]),
            (ai[0] + ai[1]) + (ai[2] + ai[3])};
}

} // namespace

bool
avx2Compiled()
{
    return true;
}

const Kernels &
avx2Kernels()
{
    static const Kernels table = {
        sumAvx2,        sumSquaresAvx2, axpyAvx2,
        negLogAccumAvx2, windowComplexAvx2, accumPsdAvx2,
        fftStageAvx2,   toneDftAvx2,
    };
    return table;
}

} // namespace savat::dsp::simd::detail

#else // !SAVAT_SIMD_X86 || !__AVX2__

namespace savat::dsp::simd::detail {

bool
avx2Compiled()
{
    return false;
}

const Kernels &
avx2Kernels()
{
    return scalarKernels();
}

} // namespace savat::dsp::simd::detail

#endif
