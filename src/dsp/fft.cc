#include "dsp/fft.hh"

#include <cmath>

#include "support/logging.hh"

namespace savat::dsp {

void
fft(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    SAVAT_ASSERT(n > 0 && (n & (n - 1)) == 0,
                 "fft size must be a power of two, got ", n);

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
        const Complex wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

std::vector<Complex>
fftCopy(const std::vector<Complex> &data, bool inverse)
{
    std::vector<Complex> out = data;
    fft(out, inverse);
    return out;
}

std::size_t
nextPowerOfTwo(std::size_t n)
{
    SAVAT_ASSERT(n >= 1, "nextPowerOfTwo needs n >= 1");
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

std::vector<Complex>
realFft(const std::vector<double> &data)
{
    const std::size_t n = nextPowerOfTwo(std::max<std::size_t>(1,
                                                               data.size()));
    std::vector<Complex> buf(n, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < data.size(); ++i)
        buf[i] = Complex(data[i], 0.0);
    fft(buf);
    return buf;
}

Complex
singleBinDft(const std::vector<double> &data, double freq)
{
    const std::size_t n = data.size();
    SAVAT_ASSERT(n > 0, "singleBinDft on empty data");
    // Direct evaluation with a recurrence for the rotating phasor.
    const double ang = -2.0 * M_PI * freq;
    const Complex step(std::cos(ang), std::sin(ang));
    Complex phasor(1.0, 0.0);
    Complex acc(0.0, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        acc += data[i] * phasor;
        phasor *= step;
        // Renormalize occasionally to stop drift of |phasor| over
        // long windows.
        if ((i & 0xFFF) == 0xFFF)
            phasor /= std::abs(phasor);
    }
    return acc / static_cast<double>(n);
}

double
toneAmplitude(const std::vector<double> &data, double freq)
{
    return 2.0 * std::abs(singleBinDft(data, freq));
}

} // namespace savat::dsp
