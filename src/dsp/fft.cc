#include "dsp/fft.hh"

#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "dsp/simd.hh"
#include "support/logging.hh"
#include "support/obs.hh"

namespace savat::dsp {

namespace {

/**
 * Precomputed per-size FFT tables: the bit-reversal permutation and
 * every stage's twiddle factors. The twiddles are generated with the
 * exact recurrence the transform previously evaluated inline
 * (w *= wlen starting from 1), so caching changes no output bit.
 */
struct FftPlan
{
    std::vector<std::size_t> bitrev;
    /** Stage twiddles, concatenated: len = 2, 4, ..., n each
     * contribute len/2 factors (n - 1 in total). */
    std::vector<Complex> twiddles;
};

const FftPlan &
planFor(std::size_t n, bool inverse)
{
    // Shared across threads: campaigns run FFT-based analyses from
    // many workers at once. Entries are never evicted, so returned
    // references stay valid.
    static std::mutex mutex;
    static std::map<std::pair<std::size_t, bool>,
                    std::unique_ptr<FftPlan>>
        cache;

    const std::lock_guard<std::mutex> lock(mutex);
    auto &slot = cache[{n, inverse}];
    if (slot) {
        SAVAT_METRIC_COUNT("fft.plan_cache_hits");
    } else {
        SAVAT_METRIC_COUNT("fft.plan_cache_misses");
        auto plan = std::make_unique<FftPlan>();
        plan->bitrev.resize(n);
        for (std::size_t i = 1, j = 0; i < n; ++i) {
            std::size_t bit = n >> 1;
            for (; j & bit; bit >>= 1)
                j ^= bit;
            j ^= bit;
            plan->bitrev[i] = j;
        }
        plan->twiddles.reserve(n - 1);
        for (std::size_t len = 2; len <= n; len <<= 1) {
            const double ang = (inverse ? 2.0 : -2.0) * M_PI /
                               static_cast<double>(len);
            const Complex wlen(std::cos(ang), std::sin(ang));
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                plan->twiddles.push_back(w);
                w *= wlen;
            }
        }
        slot = std::move(plan);
    }
    return *slot;
}

} // namespace

void
fft(Complex *data, std::size_t n, bool inverse)
{
    SAVAT_ASSERT(n > 0 && (n & (n - 1)) == 0,
                 "fft size must be a power of two, got ", n);

    SAVAT_METRIC_COUNT("fft.transforms");
    SAVAT_METRIC_RECORD("fft.size", static_cast<double>(n));

    const FftPlan &plan = planFor(n, inverse);

    // Bit-reversal permutation.
    for (std::size_t i = 1; i < n; ++i) {
        const std::size_t j = plan.bitrev[i];
        if (i < j)
            std::swap(data[i], data[j]);
    }

    // Butterfly stages run through the dispatched SIMD kernels; the
    // complex products use the same naive 4-mul formula at every
    // dispatch level, so the transform is bit-identical no matter
    // which level executes it.
    const auto &kern = simd::kernels();
    std::size_t stage = 0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const Complex *w = plan.twiddles.data() + stage;
        stage += len / 2;
        kern.fftStage(data, w, n, len);
    }
}

void
fft(std::vector<Complex> &data, bool inverse)
{
    fft(data.data(), data.size(), inverse);
}

std::vector<Complex>
fftCopy(const std::vector<Complex> &data, bool inverse)
{
    std::vector<Complex> out = data;
    fft(out, inverse);
    return out;
}

std::size_t
nextPowerOfTwo(std::size_t n)
{
    SAVAT_ASSERT(n >= 1, "nextPowerOfTwo needs n >= 1");
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

std::vector<Complex>
realFft(const std::vector<double> &data)
{
    const std::size_t n = nextPowerOfTwo(std::max<std::size_t>(1,
                                                               data.size()));
    std::vector<Complex> buf(n, Complex(0.0, 0.0));
    for (std::size_t i = 0; i < data.size(); ++i)
        buf[i] = Complex(data[i], 0.0);
    fft(buf);
    return buf;
}

Complex
singleBinDft(const double *data, std::size_t n, double freq)
{
    SAVAT_ASSERT(n > 0, "singleBinDft on empty data");
    SAVAT_METRIC_COUNT("fft.single_bin_dfts");
    SAVAT_METRIC_ADD("fft.single_bin_samples", n);
    // Lane-strided phasor recurrence (periodically renormalized to
    // stop |phasor| drift) in the dispatched SIMD kernel.
    const double ang = -2.0 * M_PI * freq;
    const Complex step(std::cos(ang), std::sin(ang));
    const Complex acc = simd::kernels().toneDft(data, n, step);
    return acc / static_cast<double>(n);
}

Complex
singleBinDft(const std::vector<double> &data, double freq)
{
    return singleBinDft(data.data(), data.size(), freq);
}

double
toneAmplitude(const std::vector<double> &data, double freq)
{
    return 2.0 * std::abs(singleBinDft(data, freq));
}

} // namespace savat::dsp
