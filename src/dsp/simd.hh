/**
 * @file
 * Runtime-dispatched SIMD kernels for the measurement hot path.
 *
 * One dispatch level (scalar, SSE2, AVX2) is selected exactly once
 * at startup from CPUID, overridable with SAVAT_SIMD=scalar|sse2|avx2
 * (requesting an unsupported level is fatal). Every kernel is
 * bit-exact across levels: elementwise ops map 1:1 onto vector
 * lanes, and every reduction uses the same fixed-shape 4-lane
 * strided tree — lane j accumulates x[4k + j], lanes combine as
 * (a0 + a1) + (a2 + a3) — in both the scalar and the vector
 * implementations, so the campaign matrix is byte-identical no
 * matter which level ran it. The SIMD translation units are built
 * with -ffp-contract=off and without FMA so no target can fuse an
 * intermediate rounding away. See DESIGN.md §5h for the contract.
 */

#ifndef SAVAT_DSP_SIMD_HH
#define SAVAT_DSP_SIMD_HH

#include <complex>
#include <cstddef>

namespace savat::dsp::simd {

using Complex = std::complex<double>;

enum class Level { Scalar = 0, Sse2 = 1, Avx2 = 2 };

/** Level in use (resolved once; later calls return the cache). */
Level active();

/** Human-readable name ("scalar", "sse2", "avx2"). */
const char *levelName(Level level);

/** Whether this build/CPU can run the given level. */
bool supported(Level level);

/**
 * Test hook: force a dispatch level (must be supported). Kernels
 * fetched after this call use the forced level.
 */
void forceLevel(Level level);

/**
 * The kernel table of the active level. Grab it once per hot loop;
 * the pointer is stable for the lifetime of the process (modulo
 * forceLevel in tests).
 */
struct Kernels {
    /** Fixed-shape 4-lane strided sum of x[0..n). */
    double (*sum)(const double *x, std::size_t n);

    /** 4-lane strided sum of squares of x[0..n). */
    double (*sumSquares)(const double *x, std::size_t n);

    /** y[i] += a * x[i] (elementwise). */
    void (*axpy)(double a, const double *x, double *y, std::size_t n);

    /** y[i] += a * negLog(u[i]); u[i] must be a positive normal. */
    void (*negLogAccum)(double a, const double *u, double *y,
                        std::size_t n);

    /** out[i] = Complex(seg[i] * win[i], 0). */
    void (*windowComplex)(const double *seg, const double *win,
                          Complex *out, std::size_t n);

    /** acc[i] += (re_i^2 + im_i^2) * s over buf[0..n). */
    void (*accumPsd)(const Complex *buf, double s, double *acc,
                     std::size_t n);

    /**
     * One radix-2 DIT FFT stage over the whole array: for each block
     * of `len` starting at i, and k in [0, len/2):
     *   u = data[i+k]; v = data[i+k+len/2] * w[k];
     *   data[i+k] = u + v; data[i+k+len/2] = u - v;
     * Complex products use the naive 4-mul formula in every level.
     */
    void (*fftStage)(Complex *data, const Complex *w, std::size_t n,
                     std::size_t len);

    /**
     * Goertzel-style single-bin DFT: sum of x[i] * step^i with the
     * 4-lane phasor recurrence (lanes advance by step^4, renormalized
     * every kDftRenormBlock blocks), combined (a0+a1)+(a2+a3).
     * Caller divides by n.
     */
    Complex (*toneDft)(const double *x, std::size_t n, Complex step);
};

/** Blocks of 4 samples between phasor renormalizations in toneDft. */
inline constexpr std::size_t kDftRenormBlock = 1024;

const Kernels &kernels();

/**
 * Portable -log(u) for positive normal doubles built from +,-,*,/
 * and integer bit manipulation only, so the scalar and per-lane
 * vector evaluations round identically. Matches std::log to ~1 ulp
 * but is NOT libm: use it only where cross-level bit-exactness
 * matters more than the last ulp.
 */
double negLog(double u);

} // namespace savat::dsp::simd

#endif // SAVAT_DSP_SIMD_HH
