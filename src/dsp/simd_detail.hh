/**
 * @file
 * Internals shared by the per-level SIMD translation units.
 *
 * The constants here define the bit-exactness contract: every level
 * evaluates negLog() with this exact operation sequence (per lane),
 * and every reduction uses the 4-lane strided tree combined as
 * (a0 + a1) + (a2 + a3). Change a constant or a sequence here and
 * the golden fixture must be regenerated for ALL levels at once.
 */

#ifndef SAVAT_DSP_SIMD_DETAIL_HH
#define SAVAT_DSP_SIMD_DETAIL_HH

#include "dsp/simd.hh"

#if defined(__x86_64__) || defined(__i386__)
#define SAVAT_SIMD_X86 1
#else
#define SAVAT_SIMD_X86 0
#endif

namespace savat::dsp::simd::detail {

/** ln(2) split (fdlibm): kLn2Hi + kLn2Lo == ln 2 to ~107 bits. */
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;

/** sqrt(2): mantissas above this are halved (exponent +1). */
inline constexpr double kSqrt2 = 1.4142135623730951;

/**
 * atanh Horner coefficients 1/(2k+1), k = 10 .. 1. With the mantissa
 * reduced to [sqrt(1/2), sqrt(2)), |z| <= 0.1716 and the truncated
 * z^23 term is ~1e-18 relative.
 */
inline constexpr double kAtanh[10] = {
    1.0 / 21.0, 1.0 / 19.0, 1.0 / 17.0, 1.0 / 15.0, 1.0 / 13.0,
    1.0 / 11.0, 1.0 / 9.0,  1.0 / 7.0,  1.0 / 5.0,  1.0 / 3.0,
};

const Kernels &scalarKernels();
const Kernels &sse2Kernels();
const Kernels &avx2Kernels();

/** Whether the per-level TU was actually built with its ISA. */
bool sse2Compiled();
bool avx2Compiled();

} // namespace savat::dsp::simd::detail

#endif // SAVAT_DSP_SIMD_DETAIL_HH
