#include "dsp/psd.hh"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hh"
#include "dsp/simd.hh"
#include "support/arena.hh"
#include "support/logging.hh"

namespace savat::dsp {

std::size_t
PsdEstimate::nearestBin(double freq_hz) const
{
    SAVAT_ASSERT(!bins.empty() && binHz > 0.0, "empty PSD");
    const double idx = freq_hz / binHz;
    const auto clamped = std::clamp(
        idx, 0.0, static_cast<double>(bins.size() - 1));
    return static_cast<std::size_t>(std::lround(clamped));
}

namespace {

/**
 * Bin index range [first, last] whose half-bin-wide cells can
 * overlap [lo_hz, hi_hz], padded by one bin so boundary rounding
 * can never drop a contributing bin; the per-bin overlap test stays
 * the authority.
 */
std::pair<std::size_t, std::size_t>
clampedBinRange(double lo_hz, double hi_hz, double binHz,
                std::size_t nbins)
{
    if (binHz <= 0.0 || nbins == 0)
        return {0, nbins ? nbins - 1 : 0};
    const double lo_idx = std::floor(lo_hz / binHz - 0.5) - 1.0;
    const double hi_idx = std::ceil(hi_hz / binHz + 0.5) + 1.0;
    const auto first = static_cast<std::size_t>(
        std::clamp(lo_idx, 0.0, static_cast<double>(nbins - 1)));
    const auto last = static_cast<std::size_t>(
        std::clamp(hi_idx, 0.0, static_cast<double>(nbins - 1)));
    return {first, last};
}

} // namespace

double
PsdEstimate::bandPower(double lo_hz, double hi_hz) const
{
    SAVAT_ASSERT(hi_hz >= lo_hz, "inverted band");
    if (bins.empty())
        return 0.0;
    const auto [first, last] =
        clampedBinRange(lo_hz, hi_hz, binHz, bins.size());
    double power = 0.0;
    for (std::size_t i = first; i <= last; ++i) {
        const double lo = frequency(i) - 0.5 * binHz;
        const double hi = frequency(i) + 0.5 * binHz;
        const double olo = std::max(lo, lo_hz);
        const double ohi = std::min(hi, hi_hz);
        if (ohi > olo)
            power += bins[i] * (ohi - olo);
    }
    return power;
}

std::size_t
PsdEstimate::peakBin(double lo_hz, double hi_hz) const
{
    SAVAT_ASSERT(!bins.empty(), "empty PSD");
    const auto [first, last] =
        clampedBinRange(lo_hz, hi_hz, binHz, bins.size());
    std::size_t best = nearestBin(lo_hz);
    double best_v = -1.0;
    for (std::size_t i = first; i <= last; ++i) {
        const double f = frequency(i);
        if (f < lo_hz || f > hi_hz)
            continue;
        if (bins[i] > best_v) {
            best_v = bins[i];
            best = i;
        }
    }
    return best;
}

namespace {

/**
 * Modified periodogram of one segment into an accumulator.
 * Scaling follows the standard Welch definition: PSD one-sided,
 * P(f) = |X(f)|^2 / (fs * sum w^2), doubled off DC/Nyquist.
 * `buf` is caller-provided FFT workspace of n complexes.
 */
void
accumulateSegment(const double *seg, const double *window,
                  std::size_t n, double sample_rate, double *acc,
                  Complex *buf)
{
    const auto &kern = simd::kernels();
    kern.windowComplex(seg, window, buf, n);
    fft(buf, n);

    const double w2 = kern.sumSquares(window, n);
    const double scale = 1.0 / (sample_rate * w2);
    const double scale2 = scale * 2.0;

    // DC and Nyquist stay single-sided; interior bins fold the
    // negative frequencies (factor 2, pre-applied to the scale).
    const std::size_t half = n / 2;
    kern.accumPsd(buf, scale, acc, 1);
    if (half > 1)
        kern.accumPsd(buf + 1, scale2, acc + 1, half - 1);
    if (half > 0)
        kern.accumPsd(buf + half, scale, acc + half, 1);
}

} // namespace

PsdEstimate
welchPsd(const std::vector<double> &samples, double sampleRate,
         std::size_t segmentLen, WindowKind kind,
         support::Arena &scratch)
{
    SAVAT_ASSERT(sampleRate > 0.0, "bad sample rate");
    SAVAT_ASSERT(!samples.empty(), "empty signal");

    std::size_t n = nextPowerOfTwo(std::max<std::size_t>(segmentLen, 8));
    // Clamp to the largest power of two that fits in the signal.
    std::size_t max_n = 1;
    while (max_n * 2 <= samples.size())
        max_n *= 2;
    n = std::min(n, max_n);
    SAVAT_ASSERT(n >= 2, "signal too short for Welch PSD");

    double *window = scratch.alloc<double>(n);
    makeWindowInto(kind, window, n);
    auto *buf = scratch.alloc<Complex>(n);
    const std::size_t hop = n / 2;
    const std::size_t half = n / 2;

    PsdEstimate est;
    est.binHz = sampleRate / static_cast<double>(n);
    est.bins.assign(half + 1, 0.0);

    std::size_t segments = 0;
    for (std::size_t start = 0; start + n <= samples.size();
         start += hop) {
        accumulateSegment(samples.data() + start, window, n,
                          sampleRate, est.bins.data(), buf);
        ++segments;
    }
    SAVAT_ASSERT(segments > 0, "no complete Welch segments");
    for (auto &b : est.bins)
        b /= static_cast<double>(segments);
    return est;
}

PsdEstimate
welchPsd(const std::vector<double> &samples, double sampleRate,
         std::size_t segmentLen, WindowKind kind)
{
    support::Arena scratch;
    return welchPsd(samples, sampleRate, segmentLen, kind, scratch);
}

PsdEstimate
periodogram(const std::vector<double> &samples, double sampleRate,
            WindowKind kind, support::Arena &scratch)
{
    SAVAT_ASSERT(!samples.empty(), "empty signal");
    const std::size_t n = nextPowerOfTwo(samples.size());
    double *padded = scratch.alloc<double>(n);
    std::copy(samples.begin(), samples.end(), padded);
    std::fill(padded + samples.size(), padded + n, 0.0);
    double *window = scratch.alloc<double>(n);
    makeWindowInto(kind, window, n);
    auto *buf = scratch.alloc<Complex>(n);

    PsdEstimate est;
    est.binHz = sampleRate / static_cast<double>(n);
    est.bins.assign(n / 2 + 1, 0.0);
    accumulateSegment(padded, window, n, sampleRate,
                      est.bins.data(), buf);
    return est;
}

PsdEstimate
periodogram(const std::vector<double> &samples, double sampleRate,
            WindowKind kind)
{
    support::Arena scratch;
    return periodogram(samples, sampleRate, kind, scratch);
}

} // namespace savat::dsp
