#include "dsp/psd.hh"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hh"
#include "support/logging.hh"

namespace savat::dsp {

std::size_t
PsdEstimate::nearestBin(double freq_hz) const
{
    SAVAT_ASSERT(!bins.empty() && binHz > 0.0, "empty PSD");
    const double idx = freq_hz / binHz;
    const auto clamped = std::clamp(
        idx, 0.0, static_cast<double>(bins.size() - 1));
    return static_cast<std::size_t>(std::lround(clamped));
}

double
PsdEstimate::bandPower(double lo_hz, double hi_hz) const
{
    SAVAT_ASSERT(hi_hz >= lo_hz, "inverted band");
    if (bins.empty())
        return 0.0;
    double power = 0.0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const double lo = frequency(i) - 0.5 * binHz;
        const double hi = frequency(i) + 0.5 * binHz;
        const double olo = std::max(lo, lo_hz);
        const double ohi = std::min(hi, hi_hz);
        if (ohi > olo)
            power += bins[i] * (ohi - olo);
    }
    return power;
}

std::size_t
PsdEstimate::peakBin(double lo_hz, double hi_hz) const
{
    SAVAT_ASSERT(!bins.empty(), "empty PSD");
    std::size_t best = nearestBin(lo_hz);
    double best_v = -1.0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        const double f = frequency(i);
        if (f < lo_hz || f > hi_hz)
            continue;
        if (bins[i] > best_v) {
            best_v = bins[i];
            best = i;
        }
    }
    return best;
}

namespace {

/**
 * Modified periodogram of one segment into an accumulator.
 * Scaling follows the standard Welch definition: PSD one-sided,
 * P(f) = |X(f)|^2 / (fs * sum w^2), doubled off DC/Nyquist.
 */
void
accumulateSegment(const std::vector<double> &seg,
                  const std::vector<double> &window, double sample_rate,
                  std::vector<double> &acc)
{
    const std::size_t n = window.size();
    std::vector<Complex> buf(n);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = Complex(seg[i] * window[i], 0.0);
    fft(buf);

    double w2 = 0.0;
    for (double w : window)
        w2 += w * w;
    const double scale = 1.0 / (sample_rate * w2);

    const std::size_t half = n / 2;
    for (std::size_t i = 0; i <= half; ++i) {
        double p = std::norm(buf[i]) * scale;
        if (i != 0 && i != half)
            p *= 2.0; // fold the negative frequencies
        acc[i] += p;
    }
}

} // namespace

PsdEstimate
welchPsd(const std::vector<double> &samples, double sampleRate,
         std::size_t segmentLen, WindowKind kind)
{
    SAVAT_ASSERT(sampleRate > 0.0, "bad sample rate");
    SAVAT_ASSERT(!samples.empty(), "empty signal");

    std::size_t n = nextPowerOfTwo(std::max<std::size_t>(segmentLen, 8));
    // Clamp to the largest power of two that fits in the signal.
    std::size_t max_n = 1;
    while (max_n * 2 <= samples.size())
        max_n *= 2;
    n = std::min(n, max_n);
    SAVAT_ASSERT(n >= 2, "signal too short for Welch PSD");

    const auto window = makeWindow(kind, n);
    const std::size_t hop = n / 2;
    const std::size_t half = n / 2;

    PsdEstimate est;
    est.binHz = sampleRate / static_cast<double>(n);
    est.bins.assign(half + 1, 0.0);

    std::size_t segments = 0;
    std::vector<double> seg(n);
    for (std::size_t start = 0; start + n <= samples.size();
         start += hop) {
        std::copy(samples.begin() + static_cast<std::ptrdiff_t>(start),
                  samples.begin() + static_cast<std::ptrdiff_t>(start + n),
                  seg.begin());
        accumulateSegment(seg, window, sampleRate, est.bins);
        ++segments;
    }
    SAVAT_ASSERT(segments > 0, "no complete Welch segments");
    for (auto &b : est.bins)
        b /= static_cast<double>(segments);
    return est;
}

PsdEstimate
periodogram(const std::vector<double> &samples, double sampleRate,
            WindowKind kind)
{
    SAVAT_ASSERT(!samples.empty(), "empty signal");
    const std::size_t n = nextPowerOfTwo(samples.size());
    std::vector<double> padded(samples);
    padded.resize(n, 0.0);
    const auto window = makeWindow(kind, n);

    PsdEstimate est;
    est.binHz = sampleRate / static_cast<double>(n);
    est.bins.assign(n / 2 + 1, 0.0);
    accumulateSegment(padded, window, sampleRate, est.bins);
    return est;
}

} // namespace savat::dsp
