/**
 * @file
 * Scalar reference kernels and the runtime dispatch for
 * savat::dsp::simd. The scalar implementations here DEFINE the
 * bit-exactness contract: the SSE2/AVX2 translation units replicate
 * these exact per-lane operation sequences with intrinsics, so every
 * level produces byte-identical results (see DESIGN.md §5h).
 */

#include "dsp/simd_detail.hh"

#include "support/logging.hh"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace savat::dsp::simd {

double
negLog(double u)
{
    using namespace detail;
    std::uint64_t bits;
    std::memcpy(&bits, &u, sizeof(bits));
    double e = static_cast<double>((bits >> 52) & 0x7FF) - 1023.0;
    const std::uint64_t mbits =
        (bits & 0xFFFFFFFFFFFFFull) | 0x3FF0000000000000ull;
    double m;
    std::memcpy(&m, &mbits, sizeof(m));
    if (m > kSqrt2) {
        m *= 0.5;
        e += 1.0;
    }
    const double z = (m - 1.0) / (m + 1.0);
    const double z2 = z * z;
    double t = kAtanh[0];
    for (int k = 1; k < 10; ++k)
        t = t * z2 + kAtanh[k];
    const double lm = 2.0 * z + z * (z2 * (2.0 * t));
    return -((lm + kLn2Lo * e) + kLn2Hi * e);
}

namespace detail {
namespace {

double
sumScalar(const double *x, std::size_t n)
{
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += x[i];
        a1 += x[i + 1];
        a2 += x[i + 2];
        a3 += x[i + 3];
    }
    if (i < n)
        a0 += x[i++];
    if (i < n)
        a1 += x[i++];
    if (i < n)
        a2 += x[i++];
    return (a0 + a1) + (a2 + a3);
}

double
sumSquaresScalar(const double *x, std::size_t n)
{
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += x[i] * x[i];
        a1 += x[i + 1] * x[i + 1];
        a2 += x[i + 2] * x[i + 2];
        a3 += x[i + 3] * x[i + 3];
    }
    if (i < n) {
        a0 += x[i] * x[i];
        ++i;
    }
    if (i < n) {
        a1 += x[i] * x[i];
        ++i;
    }
    if (i < n) {
        a2 += x[i] * x[i];
        ++i;
    }
    return (a0 + a1) + (a2 + a3);
}

void
axpyScalar(double a, const double *x, double *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
negLogAccumScalar(double a, const double *u, double *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * negLog(u[i]);
}

void
windowComplexScalar(const double *seg, const double *win, Complex *out,
                    std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = Complex(seg[i] * win[i], 0.0);
}

void
accumPsdScalar(const Complex *buf, double s, double *acc, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double re = buf[i].real();
        const double im = buf[i].imag();
        acc[i] += (re * re + im * im) * s;
    }
}

void
fftStageScalar(Complex *data, const Complex *w, std::size_t n,
               std::size_t len)
{
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
        Complex *lo = data + i;
        Complex *hi = lo + half;
        for (std::size_t k = 0; k < half; ++k) {
            const double vr = hi[k].real() * w[k].real() -
                              hi[k].imag() * w[k].imag();
            const double vi = hi[k].real() * w[k].imag() +
                              hi[k].imag() * w[k].real();
            const Complex u = lo[k];
            lo[k] = Complex(u.real() + vr, u.imag() + vi);
            hi[k] = Complex(u.real() - vr, u.imag() - vi);
        }
    }
}

Complex
toneDftScalar(const double *x, std::size_t n, Complex step)
{
    // Lane j carries the phasor at sample 4k + j; all lanes advance
    // by step^4. The lane seeds and step^4 use the naive 4-mul
    // complex product -- the vector levels compute these seeds with
    // this identical scalar code.
    double pr[4], pi[4];
    pr[0] = 1.0;
    pi[0] = 0.0;
    pr[1] = step.real();
    pi[1] = step.imag();
    pr[2] = pr[1] * pr[1] - pi[1] * pi[1];
    pi[2] = pr[1] * pi[1] + pi[1] * pr[1];
    pr[3] = pr[2] * pr[1] - pi[2] * pi[1];
    pi[3] = pr[2] * pi[1] + pi[2] * pr[1];
    const double sr = pr[2] * pr[2] - pi[2] * pi[2];
    const double si = pr[2] * pi[2] + pi[2] * pr[2];

    double ar[4] = {0.0, 0.0, 0.0, 0.0};
    double ai[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    std::size_t block = 0;
    for (; i + 4 <= n; i += 4) {
        for (int j = 0; j < 4; ++j) {
            ar[j] += x[i + j] * pr[j];
            ai[j] += x[i + j] * pi[j];
        }
        for (int j = 0; j < 4; ++j) {
            const double nr = pr[j] * sr - pi[j] * si;
            const double ni = pr[j] * si + pi[j] * sr;
            pr[j] = nr;
            pi[j] = ni;
        }
        if (++block == kDftRenormBlock) {
            block = 0;
            for (int j = 0; j < 4; ++j) {
                const double mag =
                    std::sqrt(pr[j] * pr[j] + pi[j] * pi[j]);
                pr[j] /= mag;
                pi[j] /= mag;
            }
        }
    }
    for (int j = 0; i < n; ++i, ++j) {
        ar[j] += x[i] * pr[j];
        ai[j] += x[i] * pi[j];
    }
    return {(ar[0] + ar[1]) + (ar[2] + ar[3]),
            (ai[0] + ai[1]) + (ai[2] + ai[3])};
}

} // namespace

const Kernels &
scalarKernels()
{
    static const Kernels table = {
        sumScalar,        sumSquaresScalar, axpyScalar,
        negLogAccumScalar, windowComplexScalar, accumPsdScalar,
        fftStageScalar,   toneDftScalar,
    };
    return table;
}

} // namespace detail

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::Sse2:
        return "sse2";
    case Level::Avx2:
        return "avx2";
    }
    return "?";
}

bool
supported(Level level)
{
    switch (level) {
    case Level::Scalar:
        return true;
#if SAVAT_SIMD_X86
    case Level::Sse2:
        return detail::sse2Compiled() &&
               __builtin_cpu_supports("sse2") != 0;
    case Level::Avx2:
        return detail::avx2Compiled() &&
               __builtin_cpu_supports("avx2") != 0;
#else
    case Level::Sse2:
    case Level::Avx2:
        return false;
#endif
    }
    return false;
}

namespace {

std::atomic<int> g_forced{-1};

Level
resolveLevel()
{
    if (const char *env = std::getenv("SAVAT_SIMD");
        env != nullptr && *env != '\0') {
        Level want;
        if (std::strcmp(env, "scalar") == 0)
            want = Level::Scalar;
        else if (std::strcmp(env, "sse2") == 0)
            want = Level::Sse2;
        else if (std::strcmp(env, "avx2") == 0)
            want = Level::Avx2;
        else
            SAVAT_FATAL("SAVAT_SIMD='", env,
                        "' is not one of scalar|sse2|avx2");
        if (!supported(want))
            SAVAT_FATAL("SAVAT_SIMD=", env,
                        " requested but this CPU/build does not "
                        "support it");
        return want;
    }
    if (supported(Level::Avx2))
        return Level::Avx2;
    if (supported(Level::Sse2))
        return Level::Sse2;
    return Level::Scalar;
}

} // namespace

Level
active()
{
    static const Level resolved = resolveLevel();
    const int forced = g_forced.load(std::memory_order_relaxed);
    return forced >= 0 ? static_cast<Level>(forced) : resolved;
}

void
forceLevel(Level level)
{
    if (!supported(level))
        SAVAT_FATAL("forceLevel(", levelName(level),
                    "): level not supported on this CPU/build");
    g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

const Kernels &
kernels()
{
    switch (active()) {
    case Level::Avx2:
        return detail::avx2Kernels();
    case Level::Sse2:
        return detail::sse2Kernels();
    case Level::Scalar:
        break;
    }
    return detail::scalarKernels();
}

} // namespace savat::dsp::simd
