#include "pipeline/stages.hh"

#include <cmath>

#include "analysis/ir/analyzer.hh"
#include "dsp/fft.hh"
#include "dsp/simd.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/stageprof.hh"

namespace savat::pipeline {

using kernels::Marks;

namespace {

uarch::CacheStats
diffCache(const uarch::CacheStats &now, const uarch::CacheStats &then)
{
    uarch::CacheStats d;
    d.readHits = now.readHits - then.readHits;
    d.readMisses = now.readMisses - then.readMisses;
    d.writeHits = now.writeHits - then.writeHits;
    d.writeMisses = now.writeMisses - then.writeMisses;
    d.writebacksIn = now.writebacksIn - then.writebacksIn;
    d.writebacksOut = now.writebacksOut - then.writebacksOut;
    return d;
}

uarch::BranchStats
diffBranch(const uarch::BranchStats &now,
           const uarch::BranchStats &then)
{
    uarch::BranchStats d;
    d.conditional = now.conditional - then.conditional;
    d.unconditional = now.unconditional - then.unconditional;
    d.mispredicts = now.mispredicts - then.mispredicts;
    return d;
}

uarch::SpecStats
diffSpec(const uarch::SpecStats &now, const uarch::SpecStats &then)
{
    uarch::SpecStats d;
    d.squashes = now.squashes - then.squashes;
    d.wrongPathInsts = now.wrongPathInsts - then.wrongPathInsts;
    d.transientFills = now.transientFills - then.transientFills;
    d.windowExhausted = now.windowExhausted - then.windowExhausted;
    d.fencesHit = now.fencesHit - then.fencesHit;
    return d;
}

} // namespace

const char *
cellStateName(CellState state)
{
    switch (state) {
      case CellState::Skipped:
        return "skipped";
      case CellState::Measured:
        return "measured";
      case CellState::Degraded:
        return "degraded";
    }
    SAVAT_PANIC("unknown CellState ",
                static_cast<unsigned>(state));
}

bool
cellStateByName(const std::string &name, CellState &out)
{
    if (name == "skipped")
        out = CellState::Skipped;
    else if (name == "measured")
        out = CellState::Measured;
    else if (name == "degraded")
        out = CellState::Degraded;
    else
        return false;
    return true;
}

kernels::CountSolution
burstSolve(const uarch::MachineConfig &machine, const KernelSpec &spec,
           const MeasureConfig &config)
{
    SAVAT_METRIC_TIMER("pipeline.burst_solve_seconds");
    SAVAT_METRIC_COUNT("pipeline.burst_solves");
    return kernels::solveCounts(machine, spec.cpiA, spec.cpiB,
                                config.alternation, config.pairing);
}

kernels::AlternationKernel
kernelBuild(const KernelSpec &spec, const kernels::CountSolution &counts)
{
    SAVAT_METRIC_TIMER("pipeline.kernel_build_seconds");
    SAVAT_METRIC_COUNT("pipeline.kernel_builds");
    return spec.build(counts.countA, counts.countB);
}

SimulationRun
simulate(const uarch::MachineConfig &machine, const KernelSpec &spec,
         const kernels::AlternationKernel &kernel,
         const kernels::CountSolution &counts,
         std::size_t measuredPeriods, std::uint64_t probeBase)
{
    SAVAT_METRIC_TIMER("pipeline.simulate_seconds");
    SAVAT_METRIC_COUNT("pipeline.simulations");

    const std::size_t measured = measuredPeriods;
    SAVAT_ASSERT(measured >= 2, "need at least two measured periods");

    SimulationRun run;
    // The trace doubles as the (gated) sink: disabled through the
    // cache warm-up, enabled only over the measured window.
    run.trace.setEnabled(false);
    uarch::SimpleCpu cpu(machine, run.trace);
    auto prefill = [&cpu](std::uint64_t base, std::uint64_t bytes) {
        cpu.memory().fillWords(base, 0x07070707u, (bytes + 3) / 4);
    };
    if (spec.prefillA)
        prefill(kernel.baseA, spec.footprintA);
    if (spec.prefillB)
        prefill(kernel.baseB, spec.footprintB);

    // Warm-up periods: enough to sweep cache-resident footprints
    // twice; off-chip sweeps need the L2 completely full
    // (dirty-eviction pressure is part of steady state).
    auto warm_periods_for = [&](std::uint64_t fp, std::uint64_t count) {
        const std::uint64_t lines =
            fp > machine.l2.sizeBytes
                ? machine.l2.sizeBytes * 3 / 5 /
                      machine.l1.lineBytes * 2
                : fp / machine.l1.lineBytes;
        return std::uint64_t{2} + (2 * lines + count - 1) / count;
    };
    const std::uint64_t warmup =
        std::max(warm_periods_for(spec.footprintA, counts.countA),
                 warm_periods_for(spec.footprintB, counts.countB));

    // Timing attacker: probe the full L1 through the demand path
    // without recording victim events or advancing victim time. The
    // fills/evictions a probe causes must not enter the activity
    // trace (the attacker is a separate process, invisible to the
    // analog channels), so delivery is gated off around the sweep.
    std::uint64_t probe_sum_a = 0, probe_sum_b = 0;
    auto probe = [&](std::uint64_t cycle) {
        const bool was_enabled = run.trace.enabled();
        run.trace.setEnabled(false);
        const std::uint64_t lat = cpu.l1().probeSweep(probeBase, cycle);
        run.trace.setEnabled(was_enabled);
        return lat;
    };

    std::uint64_t periods_seen = 0;
    uarch::CacheStats l1_at_enable, l2_at_enable;
    uarch::MainMemoryStats mem_at_enable;
    uarch::BranchStats bp_at_enable;
    uarch::SpecStats spec_at_enable;
    cpu.setMarkCallback([&](std::int64_t id, std::uint64_t cycle,
                            std::uint64_t) {
        if (id == Marks::kPeriodStart) {
            ++periods_seen;
            if (periods_seen == warmup + 1) {
                // Prime before the stats snapshot so the attacker's
                // initial fills are excluded from the measured-window
                // cache statistics.
                if (probeBase)
                    cpu.l1().probeSweep(probeBase, cycle);
                run.trace.setEnabled(true);
                l1_at_enable = cpu.l1Stats();
                l2_at_enable = cpu.l2Stats();
                mem_at_enable = cpu.memStats();
                bp_at_enable = cpu.branchStats();
                spec_at_enable = cpu.specStats();
            } else if (probeBase && periods_seen > warmup + 1 &&
                       periods_seen <= warmup + measured + 1) {
                // End of a measured B burst.
                probe_sum_b += probe(cycle);
            }
            if (periods_seen > warmup)
                run.periodStarts.push_back(cycle);
            if (periods_seen == warmup + measured + 1) {
                run.trace.setEnabled(false);
                return false; // stop the run
            }
        } else if (id == Marks::kHalfBoundary) {
            if (periods_seen > warmup &&
                periods_seen <= warmup + measured) {
                run.halfMarks.push_back(cycle);
                // End of a measured A burst.
                if (probeBase)
                    probe_sum_a += probe(cycle);
            }
        }
        return true;
    });

    const auto res = cpu.run(kernel.program);
    SAVAT_ASSERT(res.stoppedByMark,
                 "alternation kernel ended unexpectedly");
    SAVAT_ASSERT(run.periodStarts.size() == measured + 1 &&
                     run.halfMarks.size() == measured,
                 "mark bookkeeping mismatch");
    // Memory-system statistics over the measured window only
    // (cold-start warm-up excluded).
    run.l1 = diffCache(cpu.l1Stats(), l1_at_enable);
    run.l2 = diffCache(cpu.l2Stats(), l2_at_enable);
    run.mem.reads = cpu.memStats().reads - mem_at_enable.reads;
    run.mem.writes = cpu.memStats().writes - mem_at_enable.writes;
    run.bp = diffBranch(cpu.branchStats(), bp_at_enable);
    run.spec = diffSpec(cpu.specStats(), spec_at_enable);
    if (probeBase) {
        run.probeMeanA = static_cast<double>(probe_sum_a) /
                         static_cast<double>(measured);
        run.probeMeanB = static_cast<double>(probe_sum_b) /
                         static_cast<double>(measured);
    }
    run.periodCycles = static_cast<double>(run.periodStarts.back() -
                                           run.periodStarts.front()) /
                       static_cast<double>(measured);
    return run;
}

EffectiveCpis
effectiveCpis(const SimulationRun &run,
              const kernels::CountSolution &counts)
{
    const std::size_t measured = run.halfMarks.size();
    double a_cyc = 0.0, b_cyc = 0.0;
    for (std::size_t i = 0; i < measured; ++i) {
        a_cyc += static_cast<double>(run.halfMarks[i] -
                                     run.periodStarts[i]);
        b_cyc += static_cast<double>(run.periodStarts[i + 1] -
                                     run.halfMarks[i]);
    }
    EffectiveCpis eff;
    eff.cpiA = a_cyc / static_cast<double>(measured * counts.countA);
    eff.cpiB = b_cyc / static_cast<double>(measured * counts.countB);
    return eff;
}

void
channelExtract(const SimulationRun &run,
               const em::EmissionProfile &profile,
               std::size_t measuredPeriods, PairSimulation &sim)
{
    SAVAT_METRIC_TIMER("pipeline.channel_extract_seconds");
    SAVAT_METRIC_COUNT("pipeline.channel_extracts");

    const std::size_t measured = measuredPeriods;
    const std::uint64_t begin = run.periodStarts.front();
    const std::uint64_t end = run.periodStarts.back();

    // Spectral extraction at the alternation frequency (normalized:
    // one alternation cycle per period).
    const double norm_freq = 1.0 / run.periodCycles;
    const auto &kern = dsp::simd::kernels();
    std::vector<double> wave;
    for (std::size_t c = 0; c < em::kNumChannels; ++c) {
        const auto ch = em::channelAt(c);
        const auto weights = profile.channelWeights(ch);
        run.trace.weightedWaveformInto(weights, begin, end, wave);
        // Peak amplitude of the fundamental = 2 * |DFT coefficient|.
        sim.amplitude[c] =
            2.0 *
            dsp::singleBinDft(wave.data(), wave.size(), norm_freq);

        // Per-half mean activity (for the mismatch model). Every
        // recorded event lies inside [begin, end), so the total
        // activity of a half window equals the sum of its waveform
        // slice; the lane-strided kernel keeps the sums bit-exact
        // across dispatch levels.
        double mean_a = 0.0, mean_b = 0.0, ta = 0.0, tb = 0.0;
        for (std::size_t i = 0; i < measured; ++i) {
            const double la = static_cast<double>(run.halfMarks[i] -
                                                  run.periodStarts[i]);
            const double lb = static_cast<double>(
                run.periodStarts[i + 1] - run.halfMarks[i]);
            mean_a += kern.sum(
                wave.data() + (run.periodStarts[i] - begin),
                static_cast<std::size_t>(run.halfMarks[i] -
                                         run.periodStarts[i]));
            mean_b += kern.sum(
                wave.data() + (run.halfMarks[i] - begin),
                static_cast<std::size_t>(run.periodStarts[i + 1] -
                                         run.halfMarks[i]));
            ta += la;
            tb += lb;
        }
        sim.meanA[c] = ta > 0.0 ? mean_a / ta : 0.0;
        sim.meanB[c] = tb > 0.0 ? mean_b / tb : 0.0;
    }
}

PairSimulation
runAlternation(const uarch::MachineConfig &machine,
               const em::EmissionProfile &profile,
               const KernelSpec &spec, const MeasureConfig &config)
{
    PairSimulation sim;
    sim.a = spec.labelA;
    sim.b = spec.labelB;

    // Per-stage resource attribution is tagged by the chain that
    // will consume this simulation.
    const obs::StageChain prof_chain =
        config.channel == ChannelKind::Power
            ? obs::StageChain::Power
            : config.channel == ChannelKind::Timing
                  ? obs::StageChain::Timing
                  : obs::StageChain::Em;

    // Only the timing chain interleaves the prime+probe attacker;
    // a zero base keeps simulate() on the probe-free path and the
    // analog channels byte-identical to their golden fixtures.
    const std::uint64_t probe_base =
        config.channel == ChannelKind::Timing ? kProbeBase : 0;

    // 1. BurstSolve from each half's standalone iteration time. The
    // halves can interact once combined (e.g. an L2-sized sweep
    // evicts the other half's L1-resident array), so the realized
    // frequency is re-measured on the full kernel and the counts
    // retuned until the tone lands on the intended frequency -- the
    // same centering a bench engineer performs on the analyzer
    // display.
    {
        obs::StageScope prof(prof_chain, obs::Stage::BurstSolve);
        sim.counts = burstSolve(machine, spec, config);
    }

    const double target_period =
        machine.cyclesPerPeriod(config.alternation);
    const std::size_t measured = config.measurePeriods;

    // 2. KernelBuild, then the analyzer gate: the dataflow proofs
    // (trip counts vs the solved bursts, termination, footprint
    // range vs claim, A/B symmetry) must hold before any cycle is
    // simulated. Retunes change only the burst counts, never the
    // kernel shape, and each rebuilt kernel carries its own counts
    // in its metadata — so analyzing the first build covers the
    // campaign's use of this pair.
    const auto first_kernel = [&] {
        obs::StageScope prof(prof_chain, obs::Stage::KernelBuild);
        return kernelBuild(spec, sim.counts);
    }();
    {
        obs::StageScope prof(prof_chain,
                             obs::Stage::KernelAnalyze);
        SAVAT_METRIC_TIMER("pipeline.kernel_analyze_seconds");
        SAVAT_METRIC_COUNT("pipeline.kernel_analyses");
        const auto ka =
            analysis::ir::analyzeKernel(first_kernel, &machine);
        if (!ka.ok()) {
            SAVAT_FATAL("kernel analysis rejected ",
                        first_kernel.program.name(), ":\n",
                        ka.report.errorSummary());
        }
    }
    auto timed_simulate = [&](const kernels::AlternationKernel &k) {
        obs::StageScope prof(prof_chain, obs::Stage::Simulate);
        return simulate(machine, spec, k, sim.counts, measured,
                        probe_base);
    };
    SimulationRun run = timed_simulate(first_kernel);
    for (int iter = 0; iter < 5; ++iter) {
        const double error =
            std::abs(run.periodCycles - target_period) / target_period;
        if (error < 0.003)
            break;
        const auto eff = effectiveCpis(run, sim.counts);
        const auto retuned =
            kernels::solveCounts(machine, eff.cpiA, eff.cpiB,
                                 config.alternation, config.pairing);
        if (retuned.countA == sim.counts.countA &&
            retuned.countB == sim.counts.countB) {
            break;
        }
        SAVAT_METRIC_COUNT("pipeline.retunes");
        sim.counts.countA = retuned.countA;
        sim.counts.countB = retuned.countB;
        sim.counts.cpiA = eff.cpiA;
        sim.counts.cpiB = eff.cpiB;
        const auto rebuilt = [&] {
            obs::StageScope prof(prof_chain,
                                 obs::Stage::KernelBuild);
            return kernelBuild(spec, sim.counts);
        }();
        run = timed_simulate(rebuilt);
    }

    const std::uint64_t begin = run.periodStarts.front();
    const std::uint64_t end = run.periodStarts.back();
    sim.periodCycles = run.periodCycles;
    sim.actualFrequency =
        Frequency(machine.clock.inHz() / sim.periodCycles);

    // Duty cycle: fraction of each period spent in the A burst.
    double a_cycles = 0.0;
    for (std::size_t i = 0; i < measured; ++i) {
        a_cycles += static_cast<double>(run.halfMarks[i] -
                                        run.periodStarts[i]);
    }
    sim.duty = a_cycles / static_cast<double>(end - begin);

    // 3. ChannelExtract.
    {
        obs::StageScope prof(prof_chain,
                             obs::Stage::ChannelExtract);
        channelExtract(run, profile, measured, sim);
    }

    // 4. Pair rate for normalization: realized frequency times the
    // burst length (the larger burst when the two differ; equal to
    // the paper's count * f for equal-count kernels).
    sim.pairsPerSecond =
        sim.actualFrequency.inHz() *
        static_cast<double>(
            std::max(sim.counts.countA, sim.counts.countB));

    sim.l1 = run.l1;
    sim.l2 = run.l2;
    sim.mem = run.mem;
    sim.bp = run.bp;
    sim.spec = run.spec;
    sim.probeMeanA = run.probeMeanA;
    sim.probeMeanB = run.probeMeanB;
    sim.state = CellState::Measured;
    return sim;
}

void
sweep(const MeasureConfig &config, double noiseFloorWPerHz,
      const em::NarrowbandSpectrum &incident, Rng &rng,
      spectrum::Trace &out, support::Arena *arena)
{
    SAVAT_METRIC_TIMER("pipeline.sweep_seconds");
    spectrum::SweepConfig sweep_cfg;
    sweep_cfg.center = config.alternation;
    sweep_cfg.spanHz = 2.0 * config.spanHz;
    sweep_cfg.rbwHz = config.rbwHz;
    sweep_cfg.noiseFloorWPerHz = noiseFloorWPerHz;
    spectrum::SpectrumAnalyzer analyzer(sweep_cfg);
    analyzer.measureInto(incident, rng, out, arena);
}

SavatSample
bandIntegrate(const spectrum::Trace &trace, double centerHz,
              double bandHz, double pairsPerSecond, double toneHz)
{
    SAVAT_METRIC_TIMER("pipeline.band_integrate_seconds");
    SavatSample m;
    m.bandPowerW =
        trace.bandPower(centerHz - bandHz, centerHz + bandHz);
    m.toneHz = toneHz;
    m.savat = Energy(m.bandPowerW / pairsPerSecond);
    return m;
}

} // namespace savat::pipeline
