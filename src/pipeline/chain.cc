#include "pipeline/chain.hh"

#include <cmath>

#include "em/environment.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/stageprof.hh"

namespace savat::pipeline {

using kernels::EventKind;

namespace {

/** FNV-1a over strings and integers, for per-cell mismatch seeds. */
std::uint64_t
cellHash(const std::string &machine, EventKind a, EventKind b,
         std::size_t channel)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ull;
    };
    for (char ch : machine)
        mix(static_cast<std::uint64_t>(ch));
    mix(static_cast<std::uint64_t>(a) + 17);
    mix(static_cast<std::uint64_t>(b) + 31);
    mix(channel + 101);
    return h;
}

/** Per-repetition residual mismatch of the two kernel halves. */
struct ResidualDraw
{
    em::ChannelAmplitudes amplitude{};
    double baseEnergyZj = 0.0;
};

/**
 * Residual mismatch of the two structurally identical halves: the
 * ptr1 and ptr2 sweeps touch different arrays (different DRAM rows,
 * cache sets, alignment), so each channel's activity level differs
 * slightly -- SYSTEMATICALLY, the same way on every repetition of
 * the same pair. The deterministic per-cell magnitude/phase
 * reproduces the paper's repeatable A/A diagonals; a small
 * per-repetition factor models day-to-day variation.
 *
 * Both physical chains draw this identically (and first), so their
 * random streams stay aligned with the historical serial order.
 */
ResidualDraw
drawResidual(const em::EmissionProfile &profile,
             const std::string &machineId, const PairSimulation &sim,
             Rng &rng)
{
    ResidualDraw res;
    const double duty_factor =
        (2.0 / M_PI) * std::sin(M_PI * sim.duty);
    for (std::size_t c = 0; c < em::kNumChannels; ++c) {
        const double frac = profile.mismatchFraction[c];
        if (frac == 0.0)
            continue;
        Rng cell(cellHash(machineId, sim.a, sim.b, c));
        const double u = cell.uniform(0.7, 1.3);
        const double rep_factor = 1.0 + rng.gaussian(0.0, 0.10);
        res.amplitude[c] = duty_factor * frac * u * rep_factor * 0.5 *
                           (sim.meanA[c] + sim.meanB[c]);
    }

    double base_zj = rng.gaussian(profile.baseMismatchEnergyZj,
                                  profile.baseMismatchSpreadZj);
    res.baseEnergyZj = std::max(base_zj, 0.05);
    return res;
}

} // namespace

EmChain::EmChain(std::string machineId,
                 em::ReceivedSignalSynthesizer synth,
                 MeasureConfig config)
    : _machineId(std::move(machineId)),
      _synth(std::move(synth)),
      _config(config)
{
}

SavatSample
EmChain::measure(const PairSimulation &sim, std::size_t /*repetition*/,
                 Rng &rng, MeasureScratch &scratch) const
{
    SAVAT_METRIC_COUNT("pipeline.em_measurements");
    scratch.arena.reset();
    const auto &profile = _synth.profile();
    const auto residual = drawResidual(profile, _machineId, sim, rng);

    em::ToneInput tone;
    tone.amplitude = sim.amplitude;
    tone.residualAmplitude = residual.amplitude;
    tone.toneFrequency = sim.actualFrequency;
    tone.residualPowerW =
        Energy::zepto(residual.baseEnergyZj).inJoules() *
        sim.pairsPerSecond;

    {
        obs::StageScope prof(obs::StageChain::Em,
                             obs::Stage::Synthesize);
        SAVAT_METRIC_TIMER("pipeline.synthesize_seconds");
        _synth.synthesizeInto(tone, _config.distance,
                              _config.alternation, _config.spanHz,
                              rng, scratch.synth, &scratch.arena);
    }

    {
        obs::StageScope prof(obs::StageChain::Em,
                             obs::Stage::Sweep);
        sweep(_config, _config.noiseFloorWPerHz,
              scratch.synth.spectrum, rng, scratch.trace,
              &scratch.arena);
    }
    if (scratch.arena.capacity() > scratch.arenaHighWaterSeen) {
        scratch.arenaHighWaterSeen = scratch.arena.capacity();
        obs::noteArenaHighWater(obs::StageChain::Em,
                                scratch.arenaHighWaterSeen);
    }
    obs::StageScope prof(obs::StageChain::Em,
                         obs::Stage::BandIntegrate);
    return bandIntegrate(scratch.trace, _config.alternation.inHz(),
                         _config.bandHz, sim.pairsPerSecond,
                         scratch.synth.realizedToneHz);
}

PowerChain::PowerChain(std::string machineId,
                       em::ReceivedSignalSynthesizer synth,
                       MeasureConfig config)
    : _machineId(std::move(machineId)),
      _synth(std::move(synth)),
      _config(config)
{
}

SavatSample
PowerChain::measure(const PairSimulation &sim,
                    std::size_t /*repetition*/, Rng &rng,
                    MeasureScratch &scratch) const
{
    SAVAT_METRIC_COUNT("pipeline.power_measurements");
    scratch.arena.reset();
    const auto &profile = _synth.profile();
    const auto residual = drawResidual(profile, _machineId, sim, rng);

    // The power rail couples the loop-body residual more strongly
    // (everything draws from it).
    const double residual_w =
        Energy::zepto(residual.baseEnergyZj).inJoules() *
        sim.pairsPerSecond * _config.power.residualCoupling;

    {
        obs::StageScope prof(obs::StageChain::Power,
                             obs::Stage::Synthesize);
        SAVAT_METRIC_TIMER("pipeline.synthesize_seconds");
        const auto env =
            em::drawEnvironment(_synth.environment(), rng);
        // Coherent current summation on the shared rail; no antenna,
        // no distance attenuation (front-end response 1).
        const double signal =
            _synth.powerRailTonePower(sim.amplitude, env) +
            _synth.powerRailTonePower(residual.amplitude, env);
        _synth.synthesizeToneInto(
            signal + residual_w * env.gainFactor * env.gainFactor,
            sim.actualFrequency, 1.0, _config.alternation,
            _config.spanHz, env, rng, scratch.synth,
            &scratch.arena);
    }

    {
        obs::StageScope prof(obs::StageChain::Power,
                             obs::Stage::Sweep);
        sweep(_config, _config.power.noiseFloorWPerHz,
              scratch.synth.spectrum, rng, scratch.trace,
              &scratch.arena);
    }
    if (scratch.arena.capacity() > scratch.arenaHighWaterSeen) {
        scratch.arenaHighWaterSeen = scratch.arena.capacity();
        obs::noteArenaHighWater(obs::StageChain::Power,
                                scratch.arenaHighWaterSeen);
    }
    obs::StageScope prof(obs::StageChain::Power,
                         obs::Stage::BandIntegrate);
    return bandIntegrate(scratch.trace, _config.alternation.inHz(),
                         _config.bandHz, sim.pairsPerSecond,
                         scratch.synth.realizedToneHz);
}

TimingChain::TimingChain(std::string machineId,
                         em::ReceivedSignalSynthesizer synth,
                         MeasureConfig config)
    : _machineId(std::move(machineId)),
      _synth(std::move(synth)),
      _config(config)
{
}

SavatSample
TimingChain::measure(const PairSimulation &sim,
                     std::size_t /*repetition*/, Rng &rng,
                     MeasureScratch &scratch) const
{
    SAVAT_METRIC_COUNT("pipeline.timing_measurements");
    scratch.arena.reset();

    // The attacker's observable: the mean probe-sweep latency
    // difference between the two halves, jittered per repetition by
    // the attacker's own front-end noise (scheduler preemption,
    // unrelated fills between prime and probe).
    const double delta = sim.probeMeanA - sim.probeMeanB;
    const double delta_rep =
        delta * (1.0 + rng.gaussian(0.0, _config.timing.jitterRel));

    // The probe series is a square wave between the two latency
    // levels; its fundamental at the alternation tone has amplitude
    // (2/pi) * delta/2, converted to the common power scale by the
    // front end's cycles^2 -> W factor.
    const double fundamental = (2.0 / M_PI) * delta_rep / 2.0;
    const double tone_w =
        _config.timing.wattsPerCycleSq * fundamental * fundamental;

    {
        obs::StageScope prof(obs::StageChain::Timing,
                             obs::Stage::Synthesize);
        SAVAT_METRIC_TIMER("pipeline.synthesize_seconds");
        const auto env =
            em::drawEnvironment(_synth.environment(), rng);
        // Software readout: no antenna, no distance attenuation
        // (front-end response 1), same environment drift model as
        // the rail (shared clock/thermal state).
        _synth.synthesizeToneInto(tone_w, sim.actualFrequency, 1.0,
                                  _config.alternation,
                                  _config.spanHz, env, rng,
                                  scratch.synth, &scratch.arena);
    }

    {
        obs::StageScope prof(obs::StageChain::Timing,
                             obs::Stage::Sweep);
        sweep(_config, _config.timing.noiseFloorWPerHz,
              scratch.synth.spectrum, rng, scratch.trace,
              &scratch.arena);
    }
    if (scratch.arena.capacity() > scratch.arenaHighWaterSeen) {
        scratch.arenaHighWaterSeen = scratch.arena.capacity();
        obs::noteArenaHighWater(obs::StageChain::Timing,
                                scratch.arenaHighWaterSeen);
    }
    obs::StageScope prof(obs::StageChain::Timing,
                         obs::Stage::BandIntegrate);
    return bandIntegrate(scratch.trace, _config.alternation.inHz(),
                         _config.bandHz, sim.pairsPerSecond,
                         scratch.synth.realizedToneHz);
}

std::shared_ptr<const SignalChain>
makeSignalChain(const std::string &machineId,
                const em::ReceivedSignalSynthesizer &synth,
                const MeasureConfig &config)
{
    switch (config.channel) {
      case ChannelKind::Em:
        return std::make_shared<EmChain>(machineId, synth, config);
      case ChannelKind::Power:
        return std::make_shared<PowerChain>(machineId, synth, config);
      case ChannelKind::Timing:
        return std::make_shared<TimingChain>(machineId, synth,
                                             config);
    }
    SAVAT_FATAL("unknown channel kind");
}

} // namespace savat::pipeline
