/**
 * @file
 * Measurement-pipeline configuration.
 *
 * MeasureConfig is the single source of truth for the measurement
 * parameters: it derives from analysis::SharedMeasurementSettings
 * (the fields the static checker consumes verbatim) and adds what
 * only the live pipeline needs — the channel selection and each
 * front end's noise model. toAnalysisSettings() produces the checker
 * view by slicing the shared base, so the two layers cannot drift.
 */

#ifndef SAVAT_PIPELINE_CONFIG_HH
#define SAVAT_PIPELINE_CONFIG_HH

#include <optional>
#include <string>

#include "analysis/spec.hh"
#include "em/antenna.hh"

namespace savat::pipeline {

/** Which physical side channel a signal chain measures. */
enum class ChannelKind {
    Em,   //!< EM emanations via the loop antenna (the paper's case)
    Power //!< supply-current measurement (Section VII)
};

/** Lower-case channel name ("em" | "power"). */
const char *channelName(ChannelKind kind);

/** Parse a channel name; empty when unknown. */
std::optional<ChannelKind> channelByName(const std::string &name);

/**
 * Front-end model of the power side channel: the shunt/amplifier
 * chain replacing the antenna + spectrum-analyzer RF front end.
 */
struct PowerFrontEnd
{
    /** Noise floor of the current-measurement front end [W/Hz]. */
    double noiseFloorWPerHz = 2.0e-16;

    /**
     * How much more strongly the loop-body residual mismatch couples
     * into the supply rail than into the antenna (everything on the
     * die draws from the rail).
     */
    double residualCoupling = 8.0;
};

/** Measurement parameters shared by a campaign. */
struct MeasureConfig : analysis::SharedMeasurementSettings
{
    /** Spectrum-analyzer noise floor of the EM chain [W/Hz]. */
    double noiseFloorWPerHz = 5.0e-18;

    /** Side channel under measurement. */
    ChannelKind channel = ChannelKind::Em;

    /** Power-chain front end (used when channel == Power). */
    PowerFrontEnd power;
};

/**
 * The analysis-layer view of a measurement configuration: the shared
 * base sliced out, plus the capture-front-end facts the spectral
 * checks need (power rail or not, the antenna's rated band).
 */
analysis::MeasurementSettings
toAnalysisSettings(const MeasureConfig &config,
                   const em::LoopAntenna &antenna);

} // namespace savat::pipeline

#endif // SAVAT_PIPELINE_CONFIG_HH
