/**
 * @file
 * Measurement-pipeline configuration.
 *
 * MeasureConfig is the single source of truth for the measurement
 * parameters: it derives from analysis::SharedMeasurementSettings
 * (the fields the static checker consumes verbatim) and adds what
 * only the live pipeline needs — the channel selection and each
 * front end's noise model. toAnalysisSettings() produces the checker
 * view by slicing the shared base, so the two layers cannot drift.
 */

#ifndef SAVAT_PIPELINE_CONFIG_HH
#define SAVAT_PIPELINE_CONFIG_HH

#include <optional>
#include <string>

#include "analysis/spec.hh"
#include "em/antenna.hh"

namespace savat::pipeline {

/** Which physical side channel a signal chain measures. */
enum class ChannelKind {
    Em,    //!< EM emanations via the loop antenna (the paper's case)
    Power, //!< supply-current measurement (Section VII)
    Timing //!< software-observable cache timing (prime+probe)
};

/** Lower-case channel name ("em" | "power" | "timing"). */
const char *channelName(ChannelKind kind);

/** Parse a channel name; empty when unknown. */
std::optional<ChannelKind> channelByName(const std::string &name);

/**
 * Front-end model of the power side channel: the shunt/amplifier
 * chain replacing the antenna + spectrum-analyzer RF front end.
 */
struct PowerFrontEnd
{
    /** Noise floor of the current-measurement front end [W/Hz]. */
    double noiseFloorWPerHz = 2.0e-16;

    /**
     * How much more strongly the loop-body residual mismatch couples
     * into the supply rail than into the antenna (everything on the
     * die draws from the rail).
     */
    double residualCoupling = 8.0;
};

/**
 * Front-end model of the software timing attacker: a co-resident
 * prime+probe process that reads per-set L1 probe latencies instead
 * of an analog capture chain. The probe-latency difference between
 * the A and B halves plays the role of the alternation-tone
 * amplitude; the "noise floor" models the attacker's own front-end
 * activity (scheduler jitter, unrelated fills).
 */
struct TimingFrontEnd
{
    /** Equivalent noise floor of the probe readout [W/Hz]. */
    double noiseFloorWPerHz = 1.0e-17;

    /**
     * Conversion from squared probe-latency delta [cycles^2] to
     * equivalent tone power [W], so timing cells land on the same
     * SAVAT scale as the analog channels.
     */
    double wattsPerCycleSq = 1.0e-14;

    /** Relative 1-sigma jitter on the probe-latency delta. */
    double jitterRel = 0.05;
};

/** Measurement parameters shared by a campaign. */
struct MeasureConfig : analysis::SharedMeasurementSettings
{
    /** Spectrum-analyzer noise floor of the EM chain [W/Hz]. */
    double noiseFloorWPerHz = 5.0e-18;

    /** Side channel under measurement. */
    ChannelKind channel = ChannelKind::Em;

    /** Power-chain front end (used when channel == Power). */
    PowerFrontEnd power;

    /** Timing-chain front end (used when channel == Timing). */
    TimingFrontEnd timing;

    /**
     * Wrong-path speculation window applied to the target machine
     * (0 keeps the in-order core). Lives here rather than in the
     * shared base: the checker receives it through its own
     * MeasurementSettings field, not a verbatim slice.
     */
    std::uint32_t specWindow = 0;
};

/**
 * The analysis-layer view of a measurement configuration: the shared
 * base sliced out, plus the capture-front-end facts the spectral
 * checks need (power rail or not, the antenna's rated band).
 */
analysis::MeasurementSettings
toAnalysisSettings(const MeasureConfig &config,
                   const em::LoopAntenna &antenna);

} // namespace savat::pipeline

#endif // SAVAT_PIPELINE_CONFIG_HH
