/**
 * @file
 * Time-domain observer front ends.
 *
 * The naive baseline (oscilloscope probe) and SVF (attacker's
 * window-power observations) watch the raw activity waveform rather
 * than the alternation tone, but they observe through the same
 * physical channels the pipeline's signal chains model. These
 * helpers give them the per-channel coupling of a ChannelKind so
 * both methodologies share one front-end definition.
 */

#ifndef SAVAT_PIPELINE_FRONTEND_HH
#define SAVAT_PIPELINE_FRONTEND_HH

#include <array>

#include "em/emission.hh"
#include "pipeline/config.hh"
#include "uarch/activity.hh"

namespace savat::pipeline {

/**
 * Coupling amplitude of one emitter channel as seen by a time-domain
 * observer: the EM chain's per-channel coupling gain (at the 10 cm
 * reference — apply a DistanceModel factor separately if the
 * observer stands back), or the power chain's supply-current weight
 * (distance-free: everything shares the rail).
 */
double channelCoupling(ChannelKind kind,
                       const em::EmissionProfile &profile,
                       em::Channel channel);

/**
 * MicroEvent -> observed-signal weights for
 * uarch::ActivityTrace::weightedWaveform: each event's activity
 * weight times its channel's coupling, times `scale`.
 */
std::array<double, uarch::kNumMicroEvents>
observationWeights(ChannelKind kind, const em::EmissionProfile &profile,
                   double scale);

} // namespace savat::pipeline

#endif // SAVAT_PIPELINE_FRONTEND_HH
