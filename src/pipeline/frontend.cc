#include "pipeline/frontend.hh"

namespace savat::pipeline {

double
channelCoupling(ChannelKind kind, const em::EmissionProfile &profile,
                em::Channel channel)
{
    const auto c = static_cast<std::size_t>(channel);
    switch (kind) {
      case ChannelKind::Em: return profile.gain[c];
      case ChannelKind::Power: return profile.currentWeight[c];
      // The timing attacker reads the probe latencies directly; the
      // per-channel emission couplings do not apply.
      case ChannelKind::Timing: return 0.0;
    }
    return 0.0;
}

std::array<double, uarch::kNumMicroEvents>
observationWeights(ChannelKind kind, const em::EmissionProfile &profile,
                   double scale)
{
    std::array<double, uarch::kNumMicroEvents> weights{};
    for (std::size_t ev = 0; ev < uarch::kNumMicroEvents; ++ev) {
        const auto ch = profile.eventChannel[ev];
        weights[ev] = profile.eventWeight[ev] *
                      channelCoupling(kind, profile, ch) * scale;
    }
    return weights;
}

} // namespace savat::pipeline
