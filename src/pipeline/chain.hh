/**
 * @file
 * Pluggable signal chains: everything downstream of ChannelExtract.
 *
 * A SignalChain turns one deterministic pair simulation into one
 * measurement repetition (Synthesize -> Sweep -> BandIntegrate) with
 * fresh per-repetition randomness. Three implementations exist:
 *
 *   EmChain     the paper's case study — loop antenna at a distance,
 *               spectrum-analyzer RF front end,
 *   PowerChain  Section VII's supply-current measurement — coherent
 *               current summation on the shared rail, no propagation
 *               loss, its own front-end noise floor,
 *   TimingChain software-observable cache timing — a co-resident
 *               prime+probe attacker's per-half L1 probe-latency
 *               delta converted onto the SAVAT power scale,
 *   ReplayChain (pipeline/replay.hh) re-integrates recorded analyzer
 *               traces for offline re-analysis.
 *
 * Contract: measure() must draw all per-repetition randomness from
 * the passed rng only, in a fixed order independent of thread, call
 * site and repetition index, so campaigns stay bit-identical for
 * every jobs value. The scratch is caller-owned storage for the
 * analyzer display, synthesis buffers and staging arena (reused
 * across calls — no steady-state allocation on the repetition
 * path).
 */

#ifndef SAVAT_PIPELINE_CHAIN_HH
#define SAVAT_PIPELINE_CHAIN_HH

#include <memory>
#include <string>

#include "em/synth.hh"
#include "pipeline/config.hh"
#include "pipeline/stages.hh"

namespace savat::pipeline {

/** One physical (or replayed) measurement chain. */
class SignalChain
{
  public:
    virtual ~SignalChain() = default;

    /** Short chain name ("em" | "power" | "timing" | "replay"). */
    virtual const char *name() const = 0;

    /**
     * One measurement repetition for the given pair simulation.
     *
     * @param sim        Deterministic pair products (ChannelExtract
     *                   output). Must be measured.
     * @param repetition Repetition index within the cell; physical
     *                   chains ignore it (their randomness comes
     *                   from rng), the replay chain uses it to
     *                   select the recorded trace.
     * @param rng        Per-repetition randomness stream.
     * @param scratch    Caller-owned repetition storage (analyzer
     *                   display, synthesis result, staging arena).
     */
    virtual SavatSample measure(const PairSimulation &sim,
                                std::size_t repetition, Rng &rng,
                                MeasureScratch &scratch) const = 0;
};

/** The paper's EM chain: emission -> propagation -> antenna -> SA. */
class EmChain final : public SignalChain
{
  public:
    EmChain(std::string machineId, em::ReceivedSignalSynthesizer synth,
            MeasureConfig config);

    const char *name() const override { return "em"; }
    SavatSample measure(const PairSimulation &sim,
                        std::size_t repetition, Rng &rng,
                        MeasureScratch &scratch) const override;

    const em::ReceivedSignalSynthesizer &synth() const
    {
        return _synth;
    }

  private:
    std::string _machineId;
    em::ReceivedSignalSynthesizer _synth;
    MeasureConfig _config;
};

/** Section VII's supply-current chain. */
class PowerChain final : public SignalChain
{
  public:
    PowerChain(std::string machineId,
               em::ReceivedSignalSynthesizer synth,
               MeasureConfig config);

    const char *name() const override { return "power"; }
    SavatSample measure(const PairSimulation &sim,
                        std::size_t repetition, Rng &rng,
                        MeasureScratch &scratch) const override;

    const em::ReceivedSignalSynthesizer &synth() const
    {
        return _synth;
    }

  private:
    std::string _machineId;
    em::ReceivedSignalSynthesizer _synth;
    MeasureConfig _config;
};

/**
 * The software timing chain: the attacker's probe-latency delta
 * between the A and B halves is the alternation-tone amplitude. The
 * victim's simulation already interleaved the prime+probe readout
 * (stages.cc), so measure() only adds the attacker's front-end
 * noise (scheduler jitter on the delta) and pushes the equivalent
 * tone power through the shared Synthesize/Sweep/BandIntegrate back
 * half, landing timing cells on the same SAVAT scale as the analog
 * channels.
 */
class TimingChain final : public SignalChain
{
  public:
    TimingChain(std::string machineId,
                em::ReceivedSignalSynthesizer synth,
                MeasureConfig config);

    const char *name() const override { return "timing"; }
    SavatSample measure(const PairSimulation &sim,
                        std::size_t repetition, Rng &rng,
                        MeasureScratch &scratch) const override;

    const em::ReceivedSignalSynthesizer &synth() const
    {
        return _synth;
    }

  private:
    std::string _machineId;
    em::ReceivedSignalSynthesizer _synth;
    MeasureConfig _config;
};

/**
 * The chain selected by config.channel. Shared (immutable) so
 * campaign workers can copy their meter cheaply.
 */
std::shared_ptr<const SignalChain>
makeSignalChain(const std::string &machineId,
                const em::ReceivedSignalSynthesizer &synth,
                const MeasureConfig &config);

} // namespace savat::pipeline

#endif // SAVAT_PIPELINE_CHAIN_HH
