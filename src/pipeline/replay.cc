#include "pipeline/replay.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/crc32.hh"
#include "support/hexfloat.hh"
#include "support/io.hh"
#include "support/logging.hh"
#include "support/obs.hh"
#include "support/stageprof.hh"
#include "support/strings.hh"

namespace savat::pipeline {

using kernels::EventKind;
using support::printHexFloat;
using support::readHexFloat;

namespace {

constexpr const char *kMagic = "savat-trace-recording";
constexpr const char *kVersion = "v2";
constexpr const char *kLegacyVersion = "v1";

/** Non-fatal event-name lookup (the parser reports, never aborts). */
bool
eventNamed(const std::string &name, EventKind &out)
{
    for (auto e : kernels::extendedEvents()) {
        if (name == kernels::eventName(e)) {
            out = e;
            return true;
        }
    }
    return false;
}

/** Body of the recording (everything the v2 CRC footer covers). */
void
printBody(std::ostream &os, const TraceRecording &rec)
{
    os << kMagic << ' ' << kVersion << '\n';
    os << "machine " << rec.machineId << '\n';
    os << "channel " << rec.channel << '\n';
    os << "alternation ";
    printHexFloat(os, rec.alternationHz);
    os << "\nband ";
    printHexFloat(os, rec.bandHz);
    os << "\nevents";
    for (auto e : rec.events)
        os << ' ' << kernels::eventName(e);
    os << '\n';
    for (const auto &cell : rec.cells) {
        os << "cell " << kernels::eventName(cell.a) << ' '
           << kernels::eventName(cell.b) << ' ';
        printHexFloat(os, cell.pairsPerSecond);
        os << ' ' << cell.traces.size() << '\n';
        for (const auto &trace : cell.traces) {
            os << "trace ";
            printHexFloat(os, trace.startHz);
            os << ' ';
            printHexFloat(os, trace.binHz);
            os << ' ' << trace.psd.size();
            for (double v : trace.psd) {
                os << ' ';
                printHexFloat(os, v);
            }
            os << '\n';
        }
    }
    os << "end\n";
}

} // namespace

void
saveRecording(std::ostream &os, const TraceRecording &rec)
{
    std::ostringstream body;
    printBody(body, rec);
    const std::string text = body.str();
    os << text
       << format("crc32 %08x\n", support::crc32(text));
}

bool
saveRecordingFile(const std::string &path, const TraceRecording &rec,
                  std::string *error)
{
    return support::writeFileAtomically(
        path, [&](std::ostream &os) { saveRecording(os, rec); },
        error);
}

RecordingParseResult
loadRecording(std::istream &stream)
{
    RecordingParseResult res;

    // Slurp: the v2 CRC footer covers the raw bytes of the body, so
    // the whole recording is read before any token parsing.
    std::string content;
    {
        std::ostringstream oss;
        oss << stream.rdbuf();
        content = oss.str();
    }

    std::istringstream in(content);
    auto fail = [&res, &in](const std::string &msg) {
        res.ok = false;
        const auto pos = in.tellg();
        res.error =
            pos < 0 ? msg
                    : msg + format(" (near byte %lld of %zu)",
                                   static_cast<long long>(pos),
                                   res.bytes);
        return res;
    };
    res.bytes = content.size();

    std::string magic, version;
    if (!(in >> magic >> version) || magic != kMagic)
        return fail("not a savat trace recording");
    const bool legacy = version == kLegacyVersion;
    if (!legacy && version != kVersion)
        return fail("unsupported recording version " + version);

    if (!legacy) {
        // The footer is the final "crc32 XXXXXXXX\n" line; the
        // checksum covers every byte before it.
        const std::size_t footer = content.rfind("crc32 ");
        if (footer == std::string::npos ||
            content.find('\n', footer) != content.size() - 1)
            return fail("missing crc32 footer (file truncated?)");
        unsigned long stored = 0;
        if (std::sscanf(content.c_str() + footer, "crc32 %8lx",
                        &stored) != 1)
            return fail(format("malformed crc32 footer at byte %zu",
                               footer));
        const std::uint32_t actual =
            support::crc32(content.data(), footer);
        if (actual != static_cast<std::uint32_t>(stored))
            return fail(format("crc32 mismatch over bytes 0..%zu: "
                               "stored %08lx, computed %08x "
                               "(file corrupted or truncated)",
                               footer, stored, actual));
        content.resize(footer);
        in.str(content);
        in.clear();
        in >> magic >> version; // re-skip the header line
    }

    auto &rec = res.recording;
    std::string key;
    bool saw_end = false;
    while (in >> key) {
        if (key == "machine") {
            if (!(in >> rec.machineId))
                return fail("machine: missing id");
        } else if (key == "channel") {
            if (!(in >> rec.channel))
                return fail("channel: missing name");
        } else if (key == "alternation") {
            if (!readHexFloat(in,rec.alternationHz))
                return fail("alternation: bad value");
        } else if (key == "band") {
            if (!readHexFloat(in,rec.bandHz))
                return fail("band: bad value");
        } else if (key == "events") {
            std::string line;
            std::getline(in, line);
            std::istringstream toks(line);
            std::string name;
            while (toks >> name) {
                EventKind e;
                if (!eventNamed(name, e))
                    return fail("events: unknown event " + name);
                rec.events.push_back(e);
            }
        } else if (key == "cell") {
            TraceRecording::Cell cell;
            std::string na, nb;
            std::size_t reps = 0;
            if (!(in >> na >> nb) ||
                !readHexFloat(in,cell.pairsPerSecond) || !(in >> reps))
                return fail("cell: malformed header");
            if (!eventNamed(na, cell.a) || !eventNamed(nb, cell.b))
                return fail("cell: unknown event " + na + "/" + nb);
            cell.traces.reserve(reps);
            for (std::size_t r = 0; r < reps; ++r) {
                std::string tkey;
                spectrum::Trace trace;
                std::size_t bins = 0;
                if (!(in >> tkey) || tkey != "trace")
                    return fail("cell: expected trace record");
                if (!readHexFloat(in,trace.startHz) ||
                    !readHexFloat(in,trace.binHz) || !(in >> bins))
                    return fail("trace: malformed header");
                trace.psd.resize(bins);
                for (std::size_t i = 0; i < bins; ++i) {
                    if (!readHexFloat(in,trace.psd[i]))
                        return fail("trace: truncated PSD");
                }
                cell.traces.push_back(std::move(trace));
            }
            rec.cells.push_back(std::move(cell));
        } else if (key == "end") {
            saw_end = true;
            break;
        } else {
            return fail("unknown record '" + key + "'");
        }
    }
    if (!saw_end)
        return fail("truncated recording (missing end marker)");
    res.ok = true;
    return res;
}

RecordingParseResult
loadRecordingFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        RecordingParseResult res;
        res.error = "cannot open " + path;
        return res;
    }
    return loadRecording(in);
}

ReplayChain::ReplayChain(TraceRecording recording)
    : _recording(std::move(recording))
{
    for (std::size_t i = 0; i < _recording.cells.size(); ++i) {
        const auto &cell = _recording.cells[i];
        _index.emplace(std::make_pair(cell.a, cell.b), i);
    }
}

SavatSample
ReplayChain::measure(const PairSimulation &sim,
                     std::size_t repetition, Rng & /*rng*/,
                     MeasureScratch &scratch) const
{
    SAVAT_METRIC_COUNT("pipeline.replay_measurements");
    const auto it = _index.find(std::make_pair(sim.a, sim.b));
    SAVAT_ASSERT(it != _index.end(), "pair ",
                 kernels::eventName(sim.a), "/",
                 kernels::eventName(sim.b), " was not recorded");
    const auto &cell = _recording.cells[it->second];
    SAVAT_ASSERT(repetition < cell.traces.size(), "repetition ",
                 repetition, " of ", kernels::eventName(sim.a), "/",
                 kernels::eventName(sim.b), " was not recorded (",
                 cell.traces.size(), " available)");
    scratch.trace = cell.traces[repetition];
    const double f0 = _recording.alternationHz;
    obs::StageScope prof(obs::StageChain::Replay,
                         obs::Stage::BandIntegrate);
    return bandIntegrate(
        scratch.trace, f0, _recording.bandHz, cell.pairsPerSecond,
        scratch.trace.peakFrequency(f0 - _recording.bandHz,
                                    f0 + _recording.bandHz));
}

std::vector<ReplayCell>
replayAll(const TraceRecording &recording)
{
    SAVAT_TRACE_SPAN("pipeline.replay",
                     {{"cells", recording.cells.size()}});
    SAVAT_METRIC_TIMER("pipeline.replay_seconds");

    const ReplayChain chain(recording);
    std::vector<ReplayCell> out;
    out.reserve(recording.cells.size());
    Rng unused(0);
    MeasureScratch scratch;
    for (const auto &cell : recording.cells) {
        ReplayCell rc;
        rc.a = cell.a;
        rc.b = cell.b;
        rc.samples.reserve(cell.traces.size());
        PairSimulation sim;
        sim.a = cell.a;
        sim.b = cell.b;
        sim.state = CellState::Measured;
        for (std::size_t r = 0; r < cell.traces.size(); ++r)
            rc.samples.push_back(
                chain.measure(sim, r, unused, scratch));
        out.push_back(std::move(rc));
    }
    return out;
}

} // namespace savat::pipeline
