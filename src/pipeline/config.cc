#include "pipeline/config.hh"

namespace savat::pipeline {

const char *
channelName(ChannelKind kind)
{
    switch (kind) {
      case ChannelKind::Em: return "em";
      case ChannelKind::Power: return "power";
      case ChannelKind::Timing: return "timing";
    }
    return "?";
}

std::optional<ChannelKind>
channelByName(const std::string &name)
{
    if (name == "em")
        return ChannelKind::Em;
    if (name == "power")
        return ChannelKind::Power;
    if (name == "timing")
        return ChannelKind::Timing;
    return std::nullopt;
}

analysis::MeasurementSettings
toAnalysisSettings(const MeasureConfig &config,
                   const em::LoopAntenna &antenna)
{
    analysis::MeasurementSettings s;
    static_cast<analysis::SharedMeasurementSettings &>(s) = config;
    s.powerRail = config.channel == ChannelKind::Power;
    s.timingChannel = config.channel == ChannelKind::Timing;
    s.specWindow = config.specWindow;
    s.antennaCorner = antenna.corner();
    s.antennaMax = antenna.maxFrequency();
    return s;
}

} // namespace savat::pipeline
