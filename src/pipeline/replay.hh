/**
 * @file
 * Offline re-analysis of recorded campaigns.
 *
 * A TraceRecording stores every repetition's spectrum-analyzer
 * display (plus the per-cell pair rate) from a live campaign. The
 * ReplayChain is a SignalChain whose Synthesize/Sweep stages are the
 * recording itself: measure() copies the recorded trace and runs
 * only BandIntegrate, so replaying a recording reproduces the
 * original SAVAT values bit for bit — and lets the band, or the
 * integration itself, be re-examined long after the bench time was
 * spent.
 *
 * The serialization uses C99 hexfloats (%a), so a save/load round
 * trip is byte-exact. Format v2 appends a CRC-32 footer over the
 * whole body, so bit rot and truncation are reported with a byte
 * offset instead of silently replaying damaged spectra; v1 files
 * (no footer) are still accepted.
 */

#ifndef SAVAT_PIPELINE_REPLAY_HH
#define SAVAT_PIPELINE_REPLAY_HH

#include <istream>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pipeline/chain.hh"
#include "support/hash.hh"

namespace savat::pipeline {

/** Everything a campaign leaves behind for offline re-analysis. */
struct TraceRecording
{
    std::string machineId;
    std::vector<kernels::EventKind> events;

    /** Intended alternation frequency (band center) [Hz]. */
    double alternationHz = 0.0;

    /** Half-width of the integrated band [Hz]. */
    double bandHz = 0.0;

    /** Chain that produced the recording ("em" | "power"). */
    std::string channel = "em";

    struct Cell
    {
        kernels::EventKind a = kernels::EventKind::NOI;
        kernels::EventKind b = kernels::EventKind::NOI;
        double pairsPerSecond = 0.0;
        std::vector<spectrum::Trace> traces; //!< one per repetition
    };
    std::vector<Cell> cells;
};

/** Serialize (hexfloat + CRC-32 footer, byte-exact round trip). */
void saveRecording(std::ostream &os, const TraceRecording &rec);

/**
 * Serialize to a file via an atomic temp-file + rename write, so a
 * crash mid-save never leaves a torn recording behind. Returns false
 * (with `error` filled when non-null) on I/O failure.
 */
bool saveRecordingFile(const std::string &path,
                       const TraceRecording &rec,
                       std::string *error = nullptr);

/**
 * Outcome of parsing a recording. On failure `error` names the
 * offending record and the byte offset where parsing stopped.
 */
struct RecordingParseResult
{
    TraceRecording recording;
    bool ok = false;
    std::string error;
    std::size_t bytes = 0; //!< total size of the parsed input
};

RecordingParseResult loadRecording(std::istream &in);
RecordingParseResult loadRecordingFile(const std::string &path);

/** The replay chain: BandIntegrate over recorded traces. */
class ReplayChain final : public SignalChain
{
  public:
    explicit ReplayChain(TraceRecording recording);

    const char *name() const override { return "replay"; }

    /**
     * Re-integrate repetition `repetition` of the recorded
     * (sim.a, sim.b) cell. Only sim's event labels are consulted;
     * rng is unused (a recording has no fresh randomness). Fatal
     * when the cell or repetition was not recorded.
     */
    SavatSample measure(const PairSimulation &sim,
                        std::size_t repetition, Rng &rng,
                        MeasureScratch &scratch) const override;

    const TraceRecording &recording() const { return _recording; }

  private:
    TraceRecording _recording;
    std::unordered_map<std::pair<kernels::EventKind,
                                 kernels::EventKind>,
                       std::size_t, support::PairHash>
        _index;
};

/** One replayed cell's outputs. */
struct ReplayCell
{
    kernels::EventKind a = kernels::EventKind::NOI;
    kernels::EventKind b = kernels::EventKind::NOI;
    std::vector<SavatSample> samples; //!< one per recorded repetition
};

/** Replay every recorded cell, in recording order. */
std::vector<ReplayCell> replayAll(const TraceRecording &recording);

} // namespace savat::pipeline

#endif // SAVAT_PIPELINE_REPLAY_HH
