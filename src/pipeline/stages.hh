/**
 * @file
 * The measurement pipeline, decomposed into named stages.
 *
 * The paper's methodology is a fixed sequence of steps; this header
 * names each one so they are individually testable and so signal
 * chains (see pipeline/chain.hh) can recombine the back half:
 *
 *   BurstSolve     solve burst lengths for the intended frequency
 *   KernelBuild    generate + assemble the A/B alternation kernel
 *   Simulate       run it on the simulated machine, capture activity
 *   ChannelExtract per-channel amplitude at the alternation tone
 *   --- everything below is owned by a SignalChain ---
 *   Synthesize     received spectrum at the front end (EM / power)
 *   Sweep          spectrum-analyzer RBW sweep of the window
 *   BandIntegrate  band power / pairs-per-second = the SAVAT value
 *
 * runAlternation() drives BurstSolve..ChannelExtract including the
 * retune loop (re-measure the realized frequency on the combined
 * kernel and re-solve the counts until the tone is centered).
 */

#ifndef SAVAT_PIPELINE_STAGES_HH
#define SAVAT_PIPELINE_STAGES_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "em/emission.hh"
#include "em/synth.hh"
#include "kernels/generator.hh"
#include "pipeline/config.hh"
#include "spectrum/analyzer.hh"
#include "support/arena.hh"
#include "support/rng.hh"
#include "support/units.hh"
#include "uarch/cpu.hh"

namespace savat::pipeline {

/**
 * Base address of the timing attacker's probe array. Way above the
 * kernel arrays (kBaseA/kBaseB) so the attacker and victim share
 * cache sets only through index aliasing, never through overlapping
 * lines — the same separation a co-resident prime+probe process has.
 */
inline constexpr std::uint64_t kProbeBase = 0x70000000ull;

/**
 * Lifecycle of one campaign matrix cell. Campaigns size their
 * simulation table for the full matrix, so cells of pairs that were
 * never requested stay Skipped — reading one is a bug, caught by
 * CampaignResult::simulation(). Degraded cells were requested but
 * every containment retry failed (see savat::resilience); they carry
 * whatever partial products the last attempt produced and must not
 * be interpreted as clean measurements.
 */
enum class CellState : std::uint8_t
{
    Skipped = 0,  //!< never requested / not yet measured
    Measured,     //!< pipeline completed, products are valid
    Degraded,     //!< all attempts failed; products unreliable
};

/** Stable lower-case name ("skipped"/"measured"/"degraded"). */
const char *cellStateName(CellState state);

/** Inverse of cellStateName(); returns false on an unknown name. */
bool cellStateByName(const std::string &name, CellState &out);

/** Deterministic per-pair simulation products (environment-free). */
struct PairSimulation
{
    kernels::EventKind a = kernels::EventKind::NOI;
    kernels::EventKind b = kernels::EventKind::NOI;

    /** Lifecycle state of this cell (see CellState). */
    CellState state = CellState::Skipped;

    /** True once the pipeline has filled this record cleanly. */
    bool measured() const { return state == CellState::Measured; }

    kernels::CountSolution counts;

    /** Realized alternation frequency of the generated kernel. */
    Frequency actualFrequency;

    /** Fraction of the period spent in the A burst. */
    double duty = 0.5;

    /** Average period length in cycles. */
    double periodCycles = 0.0;

    /**
     * A/B pairs per second: the intended alternation frequency times
     * the burst length (the larger one when the two bursts differ).
     * SAVAT divides measured band power by this rate.
     */
    double pairsPerSecond = 0.0;

    /** Per-channel complex amplitude at the alternation frequency. */
    em::ChannelAmplitudes amplitude{};

    /** Per-channel mean activity of each half (au/cycle). */
    std::array<double, em::kNumChannels> meanA{};
    std::array<double, em::kNumChannels> meanB{};

    /** Memory-system statistics over the measured window. */
    uarch::CacheStats l1;
    uarch::CacheStats l2;
    uarch::MainMemoryStats mem;

    /** Branch-predictor / speculation statistics over the measured
     * window (all-zero unless the machine speculates). */
    uarch::BranchStats bp;
    uarch::SpecStats spec;

    /**
     * Timing channel only: mean L1 prime+probe sweep latency
     * [cycles] observed at the end of each A half (probeMeanA) and
     * each B half (probeMeanB). Zero for the analog channels.
     */
    double probeMeanA = 0.0;
    double probeMeanB = 0.0;
};

/** One measurement repetition's outputs. */
struct Measurement
{
    Energy savat;              //!< the SAVAT value
    double bandPowerW = 0.0;   //!< integrated band power
    double toneHz = 0.0;       //!< realized tone frequency
    spectrum::Trace trace;     //!< the analyzer display
};

/** The aggregate outputs of one repetition (no trace retained). */
struct SavatSample
{
    Energy savat;
    double bandPowerW = 0.0;
    double toneHz = 0.0;
};

/**
 * Caller-owned reusable storage for one measurement repetition: the
 * analyzer display, the synthesized incident spectrum, and a
 * monotonic arena for the kernels' staging buffers. One scratch is
 * reused across every repetition a worker runs, so after the first
 * few repetitions size the buffers, the steady-state repetition loop
 * allocates nothing. Not copyable (the arena pages are not); workers
 * each own one.
 */
struct MeasureScratch
{
    spectrum::Trace trace;     //!< analyzer display
    em::SynthesisResult synth; //!< synthesized incident spectrum
    support::Arena arena;      //!< per-repetition staging buffers

    /** Largest arena capacity already reported to the stage
     * profiler — chains publish the high-water gauge only when the
     * arena grows past it (tool path, not per-rep work). */
    std::size_t arenaHighWaterSeen = 0;
};

/** Everything the front half of the pipeline needs about a kernel. */
struct KernelSpec
{
    std::function<kernels::AlternationKernel(std::uint64_t countA,
                                             std::uint64_t countB)>
        build;
    double cpiA = 0.0;
    double cpiB = 0.0;
    std::uint64_t footprintA = 0;
    std::uint64_t footprintB = 0;
    bool prefillA = false; //!< half A loads data
    bool prefillB = false;
    kernels::EventKind labelA = kernels::EventKind::NOI;
    kernels::EventKind labelB = kernels::EventKind::NOI;
};

/** Raw products of one Simulate run. */
struct SimulationRun
{
    uarch::ActivityTrace trace;               //!< measured window only
    std::vector<std::uint64_t> periodStarts;  //!< measured + 1 marks
    std::vector<std::uint64_t> halfMarks;     //!< measured marks
    double periodCycles = 0.0;  //!< realized mean period

    /** Memory-system statistics over the measured window. */
    uarch::CacheStats l1;
    uarch::CacheStats l2;
    uarch::MainMemoryStats mem;

    /** Branch / speculation statistics over the measured window. */
    uarch::BranchStats bp;
    uarch::SpecStats spec;

    /** Mean probe-sweep latencies (timing channel; else zero). */
    double probeMeanA = 0.0;
    double probeMeanB = 0.0;
};

/**
 * BurstSolve: initial burst lengths from each half's standalone
 * iteration time (Section III).
 */
kernels::CountSolution burstSolve(const uarch::MachineConfig &machine,
                                  const KernelSpec &spec,
                                  const MeasureConfig &config);

/** KernelBuild: generate + assemble with the given burst lengths. */
kernels::AlternationKernel
kernelBuild(const KernelSpec &spec,
            const kernels::CountSolution &counts);

/**
 * Simulate: run the kernel, capturing the activity trace and the
 * period/half marks over `measuredPeriods` periods after a cache
 * warm-up sized to the halves' footprints.
 *
 * When `probeBase` is nonzero (the timing chain passes kProbeBase),
 * the attacker's prime+probe readout runs interleaved with the
 * victim: the L1 is primed from the probe array once at the end of
 * warm-up, then swept at every half boundary (end of the A burst)
 * and period start (end of the B burst) in the measured window,
 * filling probeMeanA/probeMeanB. The probes use the demand path of
 * the L1 but charge no victim cycles and record no victim events, so
 * the analog channels (probeBase == 0) are byte-identical with or
 * without this feature compiled in.
 */
SimulationRun simulate(const uarch::MachineConfig &machine,
                       const KernelSpec &spec,
                       const kernels::AlternationKernel &kernel,
                       const kernels::CountSolution &counts,
                       std::size_t measuredPeriods,
                       std::uint64_t probeBase = 0);

/**
 * Effective per-half cycles/iteration measured on the combined
 * kernel (the halves can interact once combined), used to retune the
 * burst counts.
 */
struct EffectiveCpis
{
    double cpiA = 0.0;
    double cpiB = 0.0;
};
EffectiveCpis effectiveCpis(const SimulationRun &run,
                            const kernels::CountSolution &counts);

/**
 * ChannelExtract: each emission channel's complex amplitude at the
 * alternation frequency plus its per-half mean activity (for the
 * mismatch model). Fills sim.amplitude / sim.meanA / sim.meanB.
 */
void channelExtract(const SimulationRun &run,
                    const em::EmissionProfile &profile,
                    std::size_t measuredPeriods, PairSimulation &sim);

/**
 * The deterministic front half of the pipeline:
 * BurstSolve -> (KernelBuild -> Simulate -> retune)* ->
 * ChannelExtract, exactly the bench procedure of Section IV.
 */
PairSimulation runAlternation(const uarch::MachineConfig &machine,
                              const em::EmissionProfile &profile,
                              const KernelSpec &spec,
                              const MeasureConfig &config);

/**
 * Sweep: spectrum-analyzer RBW sweep of the synthesized window with
 * the given front-end noise floor, written into the caller-owned
 * scratch trace.
 */
void sweep(const MeasureConfig &config, double noiseFloorWPerHz,
           const em::NarrowbandSpectrum &incident, Rng &rng,
           spectrum::Trace &out, support::Arena *arena = nullptr);

/**
 * BandIntegrate: integrate the +/- bandHz band around centerHz and
 * normalize by the pair rate — the SAVAT value (step 5).
 */
SavatSample bandIntegrate(const spectrum::Trace &trace,
                          double centerHz, double bandHz,
                          double pairsPerSecond, double toneHz);

} // namespace savat::pipeline

#endif // SAVAT_PIPELINE_STAGES_HH
