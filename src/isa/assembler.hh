/**
 * @file
 * Two-pass text assembler for the modeled x86 subset.
 *
 * Accepts Intel-syntax source of the form used by the paper's
 * measurement kernels:
 *
 *     loop_a:
 *         mov eax,[esi]      ; the A instruction (e.g. a load)
 *         add esi,64
 *         and esi,0x3FFFF
 *         dec ecx
 *         jne loop_a
 *
 * Lines may carry ';' comments; labels end with ':'. Branch targets
 * are resolved in a second pass, so forward references are legal.
 */

#ifndef SAVAT_ISA_ASSEMBLER_HH
#define SAVAT_ISA_ASSEMBLER_HH

#include <optional>
#include <string>
#include <string_view>

#include "isa/instruction.hh"

namespace savat::isa {

/** Result of an assembly attempt. */
struct AssemblyResult
{
    Program program;
    bool ok = false;
    /** Human-readable description of the first error, if any. */
    std::string error;
    /** 1-based source line of the first error; 0 when ok. */
    std::size_t errorLine = 0;
};

/**
 * Assemble the given source text.
 *
 * @param source Assembly source (multiple lines).
 * @param name   Name recorded on the resulting Program.
 */
AssemblyResult assemble(std::string_view source,
                        const std::string &name = "program");

/**
 * Assemble or die: wraps assemble() and calls SAVAT_FATAL on error.
 * Convenient for internally generated (trusted) kernels.
 */
Program assembleOrDie(std::string_view source,
                      const std::string &name = "program");

/** Parse a register name; nullopt when not a register. */
std::optional<Reg> parseReg(std::string_view token);

} // namespace savat::isa

#endif // SAVAT_ISA_ASSEMBLER_HH
