/**
 * @file
 * x86-subset instruction model.
 *
 * libsavat executes the paper's measurement kernels on a simulated
 * machine. The kernels (Figure 4 of the paper) are written in a small
 * x86 subset: register/immediate moves, loads/stores through [reg],
 * ADD/SUB/AND/OR/XOR/IMUL/IDIV arithmetic, CMP + conditional branches,
 * and the instructions of Figure 5 (e.g. "mov eax,[esi]",
 * "idiv eax"). This header defines the opcode set, operands and the
 * Instruction/Program containers.
 */

#ifndef SAVAT_ISA_INSTRUCTION_HH
#define SAVAT_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace savat::isa {

/** Architectural registers (32-bit, x86 general purpose). */
enum class Reg : std::uint8_t {
    Eax,
    Ebx,
    Ecx,
    Edx,
    Esi,
    Edi,
    Ebp,
    Esp,
    NumRegs
};

/** Number of architectural registers. */
inline constexpr std::size_t kNumRegs =
    static_cast<std::size_t>(Reg::NumRegs);

/** Textual (lower-case) name of a register. */
const char *regName(Reg r);

/** Opcodes of the modeled x86 subset. */
enum class Opcode : std::uint8_t {
    Mov,   //!< mov dst, src (any of reg/imm/mem combinations)
    Add,   //!< add reg, reg|imm
    Sub,   //!< sub reg, reg|imm
    And,   //!< and reg, reg|imm
    Or,    //!< or  reg, reg|imm
    Xor,   //!< xor reg, reg|imm
    Imul,  //!< imul reg, reg|imm (two-operand form)
    Idiv,  //!< idiv reg (edx:eax / reg -> eax, remainder -> edx)
    Cdq,   //!< sign-extend eax into edx
    Inc,   //!< inc reg
    Dec,   //!< dec reg
    Cmp,   //!< cmp reg, reg|imm (sets flags only)
    Test,  //!< test reg, reg|imm (AND, flags only)
    Jmp,   //!< unconditional branch
    Je,    //!< branch if ZF
    Jne,   //!< branch if !ZF
    Jae,   //!< branch if !CF (unsigned >=, the bounds-check idiom)
    Jb,    //!< branch if CF (unsigned <)
    Lfence, //!< speculation fence: wrong-path execution stops here
    Nop,   //!< no operation
    Hlt,   //!< stop simulation
    Mark,  //!< simulator hook: reports its immediate to the host
    NumOpcodes
};

/** Textual mnemonic of an opcode. */
const char *opcodeName(Opcode op);

/** Operand of an instruction. */
struct Operand
{
    enum class Kind : std::uint8_t {
        None,  //!< absent
        Reg,   //!< register direct
        Imm,   //!< 32-bit immediate
        Mem    //!< memory indirect through a register: [reg]
    };

    Kind kind = Kind::None;
    Reg reg = Reg::Eax;
    std::int64_t imm = 0;

    static Operand none() { return {}; }
    static Operand regDirect(Reg r) { return {Kind::Reg, r, 0}; }
    static Operand immediate(std::int64_t v) { return {Kind::Imm, Reg::Eax, v}; }
    static Operand memIndirect(Reg r) { return {Kind::Mem, r, 0}; }

    bool isNone() const { return kind == Kind::None; }
    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isMem() const { return kind == Kind::Mem; }

    bool operator==(const Operand &) const = default;

    /** Assembly rendering, e.g. "eax", "[esi]", "173". */
    std::string toString() const;
};

/** A single decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Operand dst;
    Operand src;
    /** Branch target as an instruction index; -1 when not a branch. */
    std::int32_t target = -1;

    bool
    isBranch() const
    {
        return op == Opcode::Jmp || op == Opcode::Je ||
               op == Opcode::Jne || op == Opcode::Jae ||
               op == Opcode::Jb;
    }

    /** True for instructions that read memory. */
    bool isLoad() const { return op == Opcode::Mov && src.isMem(); }

    /** True for instructions that write memory. */
    bool isStore() const { return op == Opcode::Mov && dst.isMem(); }

    bool operator==(const Instruction &) const = default;

    /** Assembly rendering (branch targets rendered as @index). */
    std::string toString() const;
};

/**
 * An assembled program: a flat instruction vector plus the label
 * table produced by the assembler (useful for diagnostics).
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string n) { _name = std::move(n); }

    /**
     * Append an instruction; returns its index. `sourceLine` is the
     * 1-based line of the assembly text the instruction came from
     * (0 when unknown, e.g. for programs built instruction by
     * instruction in code).
     */
    std::size_t append(const Instruction &inst,
                       std::size_t sourceLine = 0);

    /** 1-based source line of an instruction; 0 when unknown. */
    std::size_t sourceLine(std::size_t i) const;

    std::size_t size() const { return _insts.size(); }
    bool empty() const { return _insts.empty(); }

    const Instruction &at(std::size_t i) const;
    Instruction &at(std::size_t i);

    const std::vector<Instruction> &instructions() const { return _insts; }

    /** Record a label at the given instruction index. */
    void addLabel(const std::string &label, std::size_t index);

    /** Look up a label; returns -1 when absent. */
    std::int64_t labelIndex(const std::string &label) const;

    /** Full disassembly listing (one instruction per line). */
    std::string disassemble() const;

  private:
    std::string _name;
    std::vector<Instruction> _insts;
    std::vector<std::size_t> _srcLines; //!< parallel to _insts
    std::vector<std::pair<std::string, std::size_t>> _labels;
};

} // namespace savat::isa

#endif // SAVAT_ISA_INSTRUCTION_HH
