#include "isa/instruction.hh"

#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace savat::isa {

const char *
regName(Reg r)
{
    switch (r) {
      case Reg::Eax: return "eax";
      case Reg::Ebx: return "ebx";
      case Reg::Ecx: return "ecx";
      case Reg::Edx: return "edx";
      case Reg::Esi: return "esi";
      case Reg::Edi: return "edi";
      case Reg::Ebp: return "ebp";
      case Reg::Esp: return "esp";
      default: SAVAT_PANIC("bad register");
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Imul: return "imul";
      case Opcode::Idiv: return "idiv";
      case Opcode::Cdq: return "cdq";
      case Opcode::Inc: return "inc";
      case Opcode::Dec: return "dec";
      case Opcode::Cmp: return "cmp";
      case Opcode::Test: return "test";
      case Opcode::Jmp: return "jmp";
      case Opcode::Je: return "je";
      case Opcode::Jne: return "jne";
      case Opcode::Jae: return "jae";
      case Opcode::Jb: return "jb";
      case Opcode::Lfence: return "lfence";
      case Opcode::Nop: return "nop";
      case Opcode::Hlt: return "hlt";
      case Opcode::Mark: return "mark";
      default: SAVAT_PANIC("bad opcode");
    }
}

std::string
Operand::toString() const
{
    switch (kind) {
      case Kind::None: return "";
      case Kind::Reg: return regName(reg);
      case Kind::Imm:
        if (imm > -4096 && imm < 4096)
            return format("%lld", static_cast<long long>(imm));
        return format("0x%llX", static_cast<unsigned long long>(imm));
      case Kind::Mem: return format("[%s]", regName(reg));
      default: SAVAT_PANIC("bad operand kind");
    }
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << opcodeName(op);
    if (isBranch()) {
        oss << " @" << target;
        return oss.str();
    }
    if (!dst.isNone()) {
        oss << ' ' << dst.toString();
        if (!src.isNone())
            oss << ',' << src.toString();
    }
    return oss.str();
}

std::size_t
Program::append(const Instruction &inst, std::size_t sourceLine)
{
    _insts.push_back(inst);
    _srcLines.push_back(sourceLine);
    return _insts.size() - 1;
}

std::size_t
Program::sourceLine(std::size_t i) const
{
    return i < _srcLines.size() ? _srcLines[i] : 0;
}

const Instruction &
Program::at(std::size_t i) const
{
    SAVAT_ASSERT(i < _insts.size(), "instruction index out of range: ", i);
    return _insts[i];
}

Instruction &
Program::at(std::size_t i)
{
    SAVAT_ASSERT(i < _insts.size(), "instruction index out of range: ", i);
    return _insts[i];
}

void
Program::addLabel(const std::string &label, std::size_t index)
{
    _labels.emplace_back(label, index);
}

std::int64_t
Program::labelIndex(const std::string &label) const
{
    for (const auto &[name, idx] : _labels) {
        if (name == label)
            return static_cast<std::int64_t>(idx);
    }
    return -1;
}

std::string
Program::disassemble() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < _insts.size(); ++i) {
        for (const auto &[name, idx] : _labels) {
            if (idx == i)
                oss << name << ":\n";
        }
        oss << format("  %4zu  ", i) << _insts[i].toString() << '\n';
    }
    return oss.str();
}

} // namespace savat::isa
