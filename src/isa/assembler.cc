#include "isa/assembler.hh"

#include <map>

#include "support/logging.hh"
#include "support/strings.hh"

namespace savat::isa {

namespace {

/** Pending branch fix-up: instruction index -> label name. */
struct Fixup
{
    std::size_t instIndex;
    std::string label;
    std::size_t line;
};

std::optional<Opcode>
parseOpcode(std::string_view token)
{
    static const std::map<std::string, Opcode, std::less<>> table = {
        {"mov", Opcode::Mov},   {"add", Opcode::Add},
        {"sub", Opcode::Sub},   {"and", Opcode::And},
        {"or", Opcode::Or},     {"xor", Opcode::Xor},
        {"imul", Opcode::Imul}, {"idiv", Opcode::Idiv},
        {"cdq", Opcode::Cdq},   {"inc", Opcode::Inc},
        {"dec", Opcode::Dec},   {"cmp", Opcode::Cmp},
        {"test", Opcode::Test}, {"jmp", Opcode::Jmp},
        {"je", Opcode::Je},     {"jne", Opcode::Jne},
        {"jae", Opcode::Jae},   {"jb", Opcode::Jb},
        {"lfence", Opcode::Lfence},
        {"nop", Opcode::Nop},   {"hlt", Opcode::Hlt},
        {"mark", Opcode::Mark},
    };
    auto it = table.find(toLower(token));
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

/** Parse one operand token: register, [register], or immediate. */
bool
parseOperand(std::string_view token, Operand &out, std::string &err)
{
    const std::string t = trim(token);
    if (t.empty()) {
        err = "empty operand";
        return false;
    }
    if (t.front() == '[') {
        if (t.back() != ']') {
            err = "unterminated memory operand: " + t;
            return false;
        }
        const auto inner = trim(std::string_view(t).substr(1, t.size() - 2));
        auto reg = parseReg(inner);
        if (!reg) {
            err = "bad memory base register: " + t;
            return false;
        }
        out = Operand::memIndirect(*reg);
        return true;
    }
    if (auto reg = parseReg(t)) {
        out = Operand::regDirect(*reg);
        return true;
    }
    long long imm = 0;
    if (parseInt(t, imm)) {
        out = Operand::immediate(imm);
        return true;
    }
    err = "unrecognized operand: " + t;
    return false;
}

/** Does this opcode take a label operand? */
bool
isBranchOpcode(Opcode op)
{
    return op == Opcode::Jmp || op == Opcode::Je ||
           op == Opcode::Jne || op == Opcode::Jae || op == Opcode::Jb;
}

} // namespace

std::optional<Reg>
parseReg(std::string_view token)
{
    static const std::map<std::string, Reg, std::less<>> table = {
        {"eax", Reg::Eax}, {"ebx", Reg::Ebx}, {"ecx", Reg::Ecx},
        {"edx", Reg::Edx}, {"esi", Reg::Esi}, {"edi", Reg::Edi},
        {"ebp", Reg::Ebp}, {"esp", Reg::Esp},
    };
    auto it = table.find(toLower(token));
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

AssemblyResult
assemble(std::string_view source, const std::string &name)
{
    AssemblyResult res;
    res.program.setName(name);
    std::vector<Fixup> fixups;

    auto fail = [&](std::size_t line, const std::string &msg) {
        res.ok = false;
        res.error = msg;
        res.errorLine = line;
        return res;
    };

    const auto lines = split(source, '\n');
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        std::string text = lines[ln];
        // Strip comment.
        if (auto pos = text.find(';'); pos != std::string::npos)
            text = text.substr(0, pos);
        text = trim(text);
        if (text.empty())
            continue;

        // Labels: one or more "name:" prefixes may precede an
        // instruction on the same line.
        while (true) {
            const auto colon = text.find(':');
            if (colon == std::string::npos)
                break;
            const std::string label = trim(text.substr(0, colon));
            if (label.empty() ||
                label.find_first_of(" \t,[]") != std::string::npos) {
                return fail(ln + 1, "malformed label: '" + label + "'");
            }
            if (res.program.labelIndex(label) >= 0)
                return fail(ln + 1, "duplicate label: " + label);
            res.program.addLabel(label, res.program.size());
            text = trim(text.substr(colon + 1));
        }
        if (text.empty())
            continue;

        // Mnemonic and operand field.
        std::string mnem = text;
        std::string operands;
        if (auto sp = text.find_first_of(" \t"); sp != std::string::npos) {
            mnem = text.substr(0, sp);
            operands = trim(text.substr(sp + 1));
        }

        auto opcode = parseOpcode(mnem);
        if (!opcode)
            return fail(ln + 1, "unknown mnemonic: " + mnem);

        Instruction inst;
        inst.op = *opcode;

        if (isBranchOpcode(*opcode)) {
            if (operands.empty())
                return fail(ln + 1, "branch needs a target label");
            fixups.push_back({res.program.size(), operands, ln + 1});
            res.program.append(inst, ln + 1);
            continue;
        }

        std::string err;
        std::vector<std::string> fields;
        if (!operands.empty())
            fields = split(operands, ',');

        switch (*opcode) {
          case Opcode::Cdq:
          case Opcode::Lfence:
          case Opcode::Nop:
          case Opcode::Hlt:
            if (!fields.empty())
                return fail(ln + 1, std::string(opcodeName(*opcode)) +
                                        " takes no operands");
            break;
          case Opcode::Idiv:
          case Opcode::Inc:
          case Opcode::Dec:
            if (fields.size() != 1)
                return fail(ln + 1, std::string(opcodeName(*opcode)) +
                                        " takes one operand");
            if (!parseOperand(fields[0], inst.dst, err))
                return fail(ln + 1, err);
            if (!inst.dst.isReg())
                return fail(ln + 1, std::string(opcodeName(*opcode)) +
                                        " requires a register operand");
            break;
          case Opcode::Mark:
            if (fields.size() != 1)
                return fail(ln + 1, "mark takes one immediate");
            if (!parseOperand(fields[0], inst.dst, err))
                return fail(ln + 1, err);
            if (!inst.dst.isImm())
                return fail(ln + 1, "mark requires an immediate");
            break;
          default:
            // Two-operand instructions.
            if (fields.size() != 2)
                return fail(ln + 1, std::string(opcodeName(*opcode)) +
                                        " takes two operands");
            if (!parseOperand(fields[0], inst.dst, err))
                return fail(ln + 1, err);
            if (!parseOperand(fields[1], inst.src, err))
                return fail(ln + 1, err);
            if (inst.dst.isImm())
                return fail(ln + 1, "destination cannot be an immediate");
            if (inst.dst.isMem() && inst.src.isMem())
                return fail(ln + 1, "memory-to-memory is not encodable");
            if (inst.op != Opcode::Mov &&
                (inst.dst.isMem() || inst.src.isMem())) {
                return fail(ln + 1,
                            "memory operands are only modeled on mov");
            }
            break;
        }
        res.program.append(inst, ln + 1);
    }

    // Second pass: resolve branch targets.
    for (const auto &fx : fixups) {
        const auto idx = res.program.labelIndex(fx.label);
        if (idx < 0)
            return fail(fx.line, "undefined label: " + fx.label);
        res.program.at(fx.instIndex).target =
            static_cast<std::int32_t>(idx);
    }

    res.ok = true;
    return res;
}

Program
assembleOrDie(std::string_view source, const std::string &name)
{
    auto res = assemble(source, name);
    if (!res.ok) {
        SAVAT_FATAL("assembly of '", name, "' failed at line ",
                    res.errorLine, ": ", res.error);
    }
    return std::move(res.program);
}

} // namespace savat::isa
