#include "analysis/checks.hh"

#include <cmath>

#include "kernels/events.hh"
#include "support/strings.hh"

namespace savat::analysis {

using kernels::EventKind;

namespace {

/** Instructions in the test slot of an event (Figure 5). */
std::size_t
slotInstructions(EventKind e)
{
    if (e == EventKind::NOI)
        return 0;
    if (kernels::isBranchEvent(e))
        return 3; // test + jne + nop
    if (e == EventKind::TLD)
        return 3; // test + jne + guarded load
    if (e == EventKind::TLF)
        return 4; // test + jne + lfence + guarded load
    return 1;
}

std::string
kib(std::uint64_t bytes)
{
    return format("%.1f KiB", static_cast<double>(bytes) / 1024.0);
}

} // namespace

double
estimateIterationCycles(const uarch::MachineConfig &m, EventKind e)
{
    // The generated half-loop body (kernels/generator.cc): five
    // pointer-update instructions, cdq, the test slot, dec and a
    // taken jne.
    const std::size_t body = 8 + slotInstructions(e);
    const auto &lat = m.lat;

    double cycles;
    if (m.timing == uarch::TimingModel::Pipelined) {
        // Issue-limited: one cycle per instruction, plus the stalls
        // the pipeline cannot hide.
        cycles = static_cast<double>(body);
    } else {
        // Non-pipelined: every instruction pays its full latency.
        cycles = static_cast<double>(
            lat.mov + 4 * lat.alu               // pointer update
            + lat.alu                           // cdq
            + lat.alu + lat.branchTaken);       // dec + jne
        if (kernels::isMemoryEvent(e))
            cycles += lat.agu + m.l1.hitLatency;
        else if (e == EventKind::ADD || e == EventKind::SUB)
            cycles += lat.alu;
        else if (kernels::isBranchEvent(e))
            cycles += 2 * lat.alu + lat.nop + lat.branch;
        else if (kernels::isTransientEvent(e)) {
            // test + the guard (taken and not-taken halves average
            // out) + the architectural load on the not-taken half.
            cycles += lat.alu +
                      0.5 * (lat.branchTaken + lat.branch) +
                      0.5 * (lat.agu + m.l1.hitLatency) +
                      (e == EventKind::TLF ? 0.5 * lat.nop : 0.0);
        }
    }

    // Stalls charged in both models: the sweep advances one cache
    // line per iteration, so every access of an L2/memory event
    // misses the levels above its home level.
    switch (e) {
      case EventKind::LDL2:
      case EventKind::STL2:
        cycles += m.l2.hitLatency;
        break;
      case EventKind::LDM:
      case EventKind::STM:
        cycles += m.memLatency;
        break;
      case EventKind::MUL:
        if (m.timing == uarch::TimingModel::Scalar)
            cycles += lat.imul;
        break;
      case EventKind::DIV:
        // The iterative divider blocks in both timing models.
        cycles += lat.idiv - (m.timing == uarch::TimingModel::Pipelined
                                  ? 1.0
                                  : 0.0);
        break;
      case EventKind::BRM:
        // The alternating taken pattern defeats the bimodal
        // predictor about half the time.
        if (m.timing == uarch::TimingModel::Pipelined)
            cycles += 0.5 * lat.branchMispredict;
        break;
      case EventKind::TLD:
      case EventKind::TLF:
        // Streaks of 8: each polarity transition costs two bimodal
        // mispredicts, so ~4 per 16 iterations.
        if (m.timing == uarch::TimingModel::Pipelined)
            cycles += 0.25 * lat.branchMispredict;
        break;
      default:
        break;
    }
    return cycles;
}

void
checkUnits(const CampaignSpec &spec, const CheckerOptions &,
           Report &out)
{
    for (const auto &audit : spec.unitAudits) {
        Diagnostic d;
        d.id = audit.missing ? DiagId::UnitMissing
                             : DiagId::UnitMismatch;
        d.severity = diagIdSeverity(d.id);
        d.field = audit.field;
        d.line = audit.line;
        if (audit.missing) {
            d.message = "'" + audit.text + "' has no unit; expected " +
                        audit.expected;
            d.hint = "append the unit (the raw number was read in "
                     "the field's customary unit)";
        } else {
            d.message = "'" + audit.text + "' is not " + audit.expected;
            d.hint = "give the value in " + audit.expected +
                     "; the field kept its default";
        }
        out.add(std::move(d));
    }

    const auto &s = spec.settings;
    auto positive = [&](double v, const char *field,
                        const char *what) {
        if (!(v > 0.0)) {
            out.add(DiagId::NonpositiveQuantity, field,
                    format("%s must be positive (got %g)", what, v));
        }
    };
    positive(s.alternation.inHz(), "alternation",
             "the alternation frequency");
    positive(s.distance.inMeters(), "distance", "the antenna distance");
    positive(s.bandHz, "band", "the integration band half-width");
    positive(s.spanHz, "span", "the synthesized span half-width");
    positive(s.rbwHz, "rbw", "the resolution bandwidth");
    if (spec.clockOverride)
        positive(spec.clockOverride->inHz(), "clock", "the core clock");

    if (spec.repetitions == 0) {
        out.add(DiagId::NonpositiveQuantity, "repetitions",
                "a campaign needs at least one repetition per pair");
    }
    if (s.measurePeriods < 2) {
        out.add(DiagId::NonpositiveQuantity, "periods",
                format("the meter needs at least two measured "
                       "alternation periods (got %zu)",
                       s.measurePeriods),
                "the paper captures several periods per measurement; "
                "8 is the default");
    }
}

void
checkMachine(const uarch::MachineConfig &m, Report &out)
{
    if (!(m.clock.inHz() > 0.0)) {
        out.add(DiagId::NonpositiveQuantity, "clock",
                format("the core clock must be positive (got %g Hz)",
                       m.clock.inHz()));
    }
    auto check_geom = [&](const uarch::CacheGeometry &g,
                          const char *name) {
        if (!g.valid()) {
            out.add(DiagId::InvalidGeometry, name,
                    format("%s geometry is unrealizable: size=%s "
                           "assoc=%u line=%u needs a power-of-two "
                           "set count",
                           name, kib(g.sizeBytes).c_str(), g.assoc,
                           g.lineBytes),
                    "sizes must be a power-of-two multiple of "
                    "assoc * lineBytes");
        }
    };
    check_geom(m.l1, "l1");
    check_geom(m.l2, "l2");
    if (m.l1.valid() && m.l2.valid() &&
        m.l2.sizeBytes <= m.l1.sizeBytes) {
        out.add(DiagId::InvalidGeometry, "l2",
                format("L2 (%s) is not larger than L1 (%s); the "
                       "cache-level event classes are undefined on "
                       "an inverted hierarchy",
                       kib(m.l2.sizeBytes).c_str(),
                       kib(m.l1.sizeBytes).c_str()));
    }
}

void
checkSpectral(const uarch::MachineConfig &m,
              const MeasurementSettings &s, const CheckerOptions &opts,
              Report &out)
{
    const double f0 = s.alternation.inHz();
    if (!(f0 > 0.0) || !(s.bandHz > 0.0) || !(s.spanHz > 0.0) ||
        !(s.rbwHz > 0.0)) {
        return; // SAV-U001 already reported; avoid nonsense below.
    }

    if (s.bandHz > s.spanHz) {
        out.add(DiagId::BandExceedsSpan, "band",
                format("the +/-%.0f Hz integration band falls "
                       "outside the +/-%.0f Hz synthesized span",
                       s.bandHz, s.spanHz),
                "widen span to at least the band half-width");
    }

    if (s.rbwHz >= s.bandHz) {
        Diagnostic d;
        d.id = DiagId::RbwTooCoarse;
        d.severity = Severity::Error;
        d.field = "rbw";
        d.message = format(
            "RBW (%.1f Hz) is at least the integration half-band "
            "(%.1f Hz); band power would integrate filter shape, "
            "not signal",
            s.rbwHz, s.bandHz);
        d.hint = "the paper sweeps at 1 Hz RBW against a +/-1 kHz "
                 "band";
        out.add(std::move(d));
    } else if (s.rbwHz * opts.rbwBandRatio > s.bandHz) {
        out.add(DiagId::RbwTooCoarse, "rbw",
                format("RBW (%.1f Hz) is coarse for a +/-%.0f Hz "
                       "band; the tone's ~tens-of-Hz dispersion "
                       "will not resolve",
                       s.rbwHz, s.bandHz),
                "keep RBW below a tenth of the band half-width");
    }

    // The activity trace is sampled once per core cycle, so the
    // synthesized window must stay below the cycle-rate Nyquist.
    const double nyquist = m.clock.inHz() / 2.0;
    if (m.clock.inHz() > 0.0 && f0 + s.spanHz > nyquist) {
        out.add(DiagId::ToneAboveNyquist, "alternation",
                format("the synthesized window reaches %.3f kHz, "
                       "beyond the %.3f kHz Nyquist limit of the "
                       "cycle-sampled activity trace",
                       (f0 + s.spanHz) / 1e3, nyquist / 1e3),
                "lower the alternation frequency or span, or raise "
                "the core clock");
    }

    const double d_m = s.distance.inMeters();
    if (d_m > 0.0 &&
        (d_m < opts.distanceMinM || d_m > opts.distanceMaxM)) {
        out.add(DiagId::DistanceOutsideModel, "distance",
                format("%.0f cm is outside the propagation model's "
                       "anchored 10-100 cm range; amplitudes are "
                       "extrapolated",
                       s.distance.inCentimeters()),
                "anchor the distance model with measurements at "
                "this range before trusting absolute values");
    }

    if (!s.powerRail) {
        if (f0 < s.antennaCorner.inHz()) {
            out.add(DiagId::ToneBelowAntennaBand, "alternation",
                    format("the %.1f kHz tone sits below the loop "
                           "antenna's %.1f kHz corner and rolls "
                           "off ~20 dB/decade",
                           f0 / 1e3, s.antennaCorner.inKhz()),
                    "raise the alternation frequency into the "
                    "antenna's rated band");
        } else if (f0 > s.antennaMax.inHz()) {
            out.add(DiagId::ToneBelowAntennaBand, "alternation",
                    format("the %.3f MHz tone exceeds the antenna's "
                           "%.0f MHz rated band",
                           f0 / 1e6, s.antennaMax.inMhz()),
                    "lower the alternation frequency into the "
                    "antenna's rated band");
        }
    }
}

void
checkPairBursts(const uarch::MachineConfig &m, EventKind a,
                EventKind b, const MeasurementSettings &s,
                const CheckerOptions &opts, Report &out)
{
    if (!(s.alternation.inHz() > 0.0) || !(m.clock.inHz() > 0.0))
        return; // reported by the unit/machine checks
    const double cpi_a = estimateIterationCycles(m, a);
    const double cpi_b = estimateIterationCycles(m, b);
    const double period = m.cyclesPerPeriod(s.alternation);
    const std::string pair_name = std::string(kernels::eventName(a)) +
                                  "/" + kernels::eventName(b);

    if (period <= cpi_a + cpi_b) {
        out.add(DiagId::BurstUnsolvable, "alternation",
                format("%s: one %.3f kHz alternation period is %.1f "
                       "cycles, but a single A+B iteration needs "
                       "~%.1f; no burst lengths can reach the "
                       "intended frequency",
                       pair_name.c_str(), s.alternation.inKhz(),
                       period, cpi_a + cpi_b),
                "lower the alternation frequency (the paper uses "
                "80 kHz) or pick a faster machine");
        return;
    }

    // Replicate solveCounts' rounding to predict the realized
    // frequency the integer burst lengths produce.
    double count_a, count_b;
    if (s.pairing == kernels::PairingMode::EqualDuration) {
        count_a = std::max(1.0, std::round(period / 2.0 / cpi_a));
        count_b = std::max(1.0, std::round(period / 2.0 / cpi_b));
    } else {
        count_a = count_b =
            std::max(1.0, std::round(period / (cpi_a + cpi_b)));
    }
    const double realized = count_a * cpi_a + count_b * cpi_b;
    const double err = std::abs(realized - period) / period;
    if (err > opts.frequencyTolerance) {
        out.add(DiagId::BurstQuantized, "alternation",
                format("%s: integer burst lengths (%.0f/%.0f) land "
                       "%.1f %% off the intended %.3f kHz; the "
                       "tone will miss the measurement band center",
                       pair_name.c_str(), count_a, count_b,
                       err * 100.0, s.alternation.inKhz()),
                "choose an alternation frequency with more cycles "
                "per period relative to the slower event's "
                "iteration time");
    }

    if (s.pairing == kernels::PairingMode::EqualCounts) {
        const double duty = cpi_a / (cpi_a + cpi_b);
        if (duty < opts.dutyMin || duty > opts.dutyMax) {
            out.add(DiagId::DutySkewed, "pairing",
                    format("%s: equal-counts pairing yields a "
                           "~%.0f %% duty cycle; the alternation "
                           "fundamental weakens as the duty leaves "
                           "50 %%",
                           pair_name.c_str(), duty * 100.0),
                    "use equal-duration pairing for events with "
                    "very different iteration times");
        }
    }
}

void
checkSpeculation(const uarch::MachineConfig &m,
                 const MeasurementSettings &s, Report &out)
{
    // The effective window: the measurement override when present
    // (the meter applies it to the machine), else whatever the
    // machine already configures.
    const std::uint32_t window =
        s.specWindow ? s.specWindow : m.spec.window;

    if (s.timingChannel && window == 0) {
        out.add(DiagId::TimingWithoutSpec, "channel",
                "timing channel with speculation disabled: the "
                "prime+probe readout sees only architectural cache "
                "footprints, and transient events (TLD) degenerate "
                "to their fenced counterparts",
                "set speculation-window (e.g. 32) so wrong-path "
                "loads leave measurable fills");
    }
    if (window > 4096) {
        out.add(DiagId::SpecWindowExcessive, "speculation-window",
                format("speculation window %u exceeds any realistic "
                       "wrong-path depth (limit 4096)",
                       window),
                "real reorder windows are tens to a few hundred "
                "micro-ops; choose a window in that range");
    }
    if (window > 0 && m.timing == uarch::TimingModel::Scalar) {
        out.add(DiagId::SpecOnScalarModel, "speculation-window",
                format("speculation window %u has no effect on the "
                       "scalar timing model: the non-pipelined core "
                       "never fetches past an unresolved branch",
                       window),
                "use the pipelined timing model when measuring "
                "speculation effects");
    }
}

void
checkEventFootprint(const uarch::MachineConfig &m, EventKind e,
                    Report &out)
{
    if (!kernels::isMemoryEvent(e))
        return;
    const std::uint64_t fp = kernels::footprintBytes(e, m);
    const std::string name = kernels::eventName(e);

    if (fp == 0 || (fp & (fp - 1)) != 0) {
        out.add(DiagId::FootprintMismatch, name,
                format("%s sweep footprint (%s) is not a power of "
                       "two; the pointer-update mask cannot "
                       "express it",
                       name.c_str(), kib(fp).c_str()));
        return;
    }

    switch (e) {
      case EventKind::LDL1:
      case EventKind::STL1:
        if (fp > m.l1.sizeBytes) {
            out.add(DiagId::FootprintMismatch, name,
                    format("%s claims L1 hits but its %s sweep "
                           "spills past the %s L1",
                           name.c_str(), kib(fp).c_str(),
                           kib(m.l1.sizeBytes).c_str()),
                    "shrink the sweep below the L1 capacity");
        }
        break;
      case EventKind::LDL2:
      case EventKind::STL2:
        if (fp <= m.l1.sizeBytes) {
            out.add(DiagId::FootprintMismatch, name,
                    format("%s claims L2 hits but its %s sweep fits "
                           "in the %s L1; it would measure L1 hits",
                           name.c_str(), kib(fp).c_str(),
                           kib(m.l1.sizeBytes).c_str()),
                    "grow the sweep past the L1 capacity");
        } else if (fp > m.l2.sizeBytes) {
            out.add(DiagId::FootprintMismatch, name,
                    format("%s claims L2 hits but its %s sweep "
                           "spills past the %s L2",
                           name.c_str(), kib(fp).c_str(),
                           kib(m.l2.sizeBytes).c_str()),
                    "shrink the sweep below the L2 capacity");
        }
        break;
      case EventKind::LDM:
      case EventKind::STM:
        if (fp <= m.l2.sizeBytes) {
            out.add(DiagId::FootprintMismatch, name,
                    format("%s claims main-memory accesses but its "
                           "%s sweep fits in the %s L2",
                           name.c_str(), kib(fp).c_str(),
                           kib(m.l2.sizeBytes).c_str()),
                    "grow the sweep to several times the L2 "
                    "capacity");
        }
        break;
      default:
        break;
    }
}

namespace {

/** One operand-shape rule violation. */
void
badOperand(Report &out, const std::string &what, std::size_t index,
           const isa::Instruction &inst, const char *why)
{
    out.add(DiagId::InvalidOperand, what,
            format("instruction %zu '%s': %s", index,
                   inst.toString().c_str(), why));
}

} // namespace

void
lintProgram(const isa::Program &program, const std::string &what,
            Report &out)
{
    using isa::Opcode;
    using OK = isa::Operand::Kind;
    const auto size = static_cast<std::int64_t>(program.size());
    for (std::size_t i = 0; i < program.size(); ++i) {
        const auto &inst = program.at(i);
        const OK dst = inst.dst.kind;
        const OK src = inst.src.kind;
        switch (inst.op) {
          case Opcode::Mov:
            if (dst == OK::Mem && src == OK::Mem)
                badOperand(out, what, i, inst,
                           "memory-to-memory moves are not in the "
                           "modeled subset");
            else if (dst != OK::Reg && dst != OK::Mem)
                badOperand(out, what, i, inst,
                           "mov destination must be a register or "
                           "[reg]");
            else if (src == OK::None)
                badOperand(out, what, i, inst, "mov needs a source");
            break;
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Imul:
          case Opcode::Cmp:
          case Opcode::Test:
            if (dst != OK::Reg)
                badOperand(out, what, i, inst,
                           "arithmetic destination must be a "
                           "register");
            else if (src != OK::Reg && src != OK::Imm)
                badOperand(out, what, i, inst,
                           "arithmetic source must be a register or "
                           "immediate");
            break;
          case Opcode::Idiv:
            if (dst != OK::Reg || src != OK::None)
                badOperand(out, what, i, inst,
                           "idiv takes exactly one register "
                           "operand");
            break;
          case Opcode::Inc:
          case Opcode::Dec:
            if (dst != OK::Reg || src != OK::None)
                badOperand(out, what, i, inst,
                           "inc/dec take exactly one register "
                           "operand");
            break;
          case Opcode::Cdq:
          case Opcode::Lfence:
          case Opcode::Nop:
          case Opcode::Hlt:
            if (dst != OK::None || src != OK::None)
                badOperand(out, what, i, inst,
                           "instruction takes no operands");
            break;
          case Opcode::Mark:
            if (dst != OK::Imm)
                badOperand(out, what, i, inst,
                           "mark takes an immediate identifier");
            break;
          case Opcode::Jmp:
          case Opcode::Je:
          case Opcode::Jne:
          case Opcode::Jae:
          case Opcode::Jb:
            if (inst.target < 0 || inst.target >= size)
                badOperand(out, what, i, inst,
                           "branch target is outside the program");
            break;
          default:
            badOperand(out, what, i, inst,
                       "opcode is not in the modeled x86 subset");
            break;
        }
    }
}

void
lintKernel(const kernels::AlternationKernel &kernel, Report &out)
{
    const std::string what = kernel.program.name().empty()
                                 ? "alternation kernel"
                                 : kernel.program.name();
    lintProgram(kernel.program, what, out);

    if (kernel.countA == 0 || kernel.countB == 0) {
        out.add(DiagId::KernelStructure, what,
                format("burst lengths must be positive (countA=%llu "
                       "countB=%llu)",
                       static_cast<unsigned long long>(kernel.countA),
                       static_cast<unsigned long long>(
                           kernel.countB)));
    }

    bool period_mark = false, half_mark = false, backward = false,
         halts = false;
    const auto &insts = kernel.program.instructions();
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const auto &inst = insts[i];
        if (inst.op == isa::Opcode::Mark && inst.dst.isImm()) {
            period_mark |= inst.dst.imm == kernels::Marks::kPeriodStart;
            half_mark |= inst.dst.imm == kernels::Marks::kHalfBoundary;
        }
        if (inst.isBranch() && inst.target >= 0 &&
            static_cast<std::size_t>(inst.target) <= i) {
            backward = true;
        }
        halts |= inst.op == isa::Opcode::Hlt;
    }
    if (!period_mark) {
        out.add(DiagId::KernelStructure, what,
                "no period-start mark; the meter cannot delimit "
                "alternation periods");
    }
    if (!half_mark) {
        out.add(DiagId::KernelStructure, what,
                "no half-boundary mark; the meter cannot separate "
                "the A and B bursts");
    }
    if (!backward) {
        out.add(DiagId::KernelStructure, what,
                "no backward branch; the alternation must loop "
                "until the meter stops it");
    }
    if (halts) {
        out.add(DiagId::KernelStructure, what,
                "an alternation kernel must not halt; hlt belongs "
                "to calibration kernels only");
    }
}

} // namespace savat::analysis
