#include "analysis/spec.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/strings.hh"

namespace savat::analysis {

namespace {

/** Dimensions a spec quantity can have. */
enum class Dim { Frequency, Length, Size, Time };

const char *
dimName(Dim d)
{
    switch (d) {
      case Dim::Frequency: return "a frequency (Hz/kHz/MHz/GHz)";
      case Dim::Length: return "a length (mm/cm/m)";
      case Dim::Size: return "a size (B/KiB/MiB)";
      case Dim::Time: return "a duration (us/ms/s)";
    }
    return "?";
}

/** Scale to SI for a unit suffix; nullopt when not of this dim. */
std::optional<double>
unitScale(Dim d, const std::string &unit)
{
    const std::string u = toLower(unit);
    switch (d) {
      case Dim::Frequency:
        if (u == "hz") return 1.0;
        if (u == "khz") return 1e3;
        if (u == "mhz") return 1e6;
        if (u == "ghz") return 1e9;
        return std::nullopt;
      case Dim::Length:
        if (u == "mm") return 1e-3;
        if (u == "cm") return 1e-2;
        if (u == "m") return 1.0;
        return std::nullopt;
      case Dim::Size:
        if (u == "b") return 1.0;
        if (u == "kib" || u == "kb") return 1024.0;
        if (u == "mib" || u == "mb") return 1024.0 * 1024.0;
        return std::nullopt;
      case Dim::Time:
        if (u == "us") return 1e-6;
        if (u == "ms") return 1e-3;
        if (u == "s") return 1.0;
        return std::nullopt;
    }
    return std::nullopt;
}

/** True when the suffix is a unit of any known dimension. */
bool
isAnyUnit(const std::string &unit)
{
    for (Dim d : {Dim::Frequency, Dim::Length, Dim::Size,
                  Dim::Time}) {
        if (unitScale(d, unit))
            return true;
    }
    return false;
}

bool
parseDouble(const std::string &s, double &out)
{
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && !s.empty();
}

/** Non-fatal event lookup (kernels::eventByName exits on failure). */
std::optional<kernels::EventKind>
findEvent(const std::string &name)
{
    for (auto e : kernels::extendedEvents()) {
        if (name == kernels::eventName(e))
            return e;
    }
    return std::nullopt;
}

struct Parser
{
    CampaignSpec spec;
    std::string error;
    std::size_t errorLine = 0;

    bool
    fail(std::size_t line, std::string msg)
    {
        if (error.empty()) {
            error = std::move(msg);
            errorLine = line;
        }
        return false;
    }

    /**
     * Parse "<number> [unit]" with the field's expected dimension;
     * returns the value in SI units. A bare number is interpreted in
     * `fallback` (the unit the paper and examples use) and audited;
     * a suffix of the wrong dimension keeps the field's previous
     * value and is audited.
     */
    std::optional<double>
    quantity(const std::string &field, Dim dim, double fallbackScale,
             const std::vector<std::string> &args, std::size_t line)
    {
        if (args.empty() || args.size() > 2) {
            fail(line, field + " expects '<number> [unit]'");
            return std::nullopt;
        }
        double v = 0.0;
        if (!parseDouble(args[0], v)) {
            fail(line, "malformed number '" + args[0] + "'");
            return std::nullopt;
        }
        if (args.size() == 1) {
            spec.unitAudits.push_back(
                {field, args[0], dimName(dim), line, true});
            return v * fallbackScale;
        }
        if (auto scale = unitScale(dim, args[1]))
            return v * *scale;
        if (isAnyUnit(args[1])) {
            // Wrong dimension: keep the default value, audit it.
            spec.unitAudits.push_back(
                {field, args[0] + " " + args[1], dimName(dim), line,
                 false});
            return std::nullopt;
        }
        fail(line, "unknown unit '" + args[1] + "' for " + field);
        return std::nullopt;
    }

    bool
    integer(const std::string &field,
            const std::vector<std::string> &args, std::size_t line,
            std::size_t &out)
    {
        long long v = 0;
        if (args.size() != 1 || !parseInt(args[0], v) || v < 0)
            return fail(line, field + " expects a non-negative integer");
        out = static_cast<std::size_t>(v);
        return true;
    }

    bool
    handle(const std::string &key,
           const std::vector<std::string> &args, std::size_t line)
    {
        auto &s = spec;
        s.fieldLines[key] = line;
        if (key == "campaign") {
            if (args.empty())
                return fail(line, "campaign expects a name");
            s.name = args[0];
            return true;
        }
        if (key == "machine") {
            if (args.size() != 1)
                return fail(line, "machine expects one identifier");
            s.machineId = args[0];
            return true;
        }
        if (key == "events") {
            for (const auto &name : args) {
                const auto e = findEvent(name);
                if (!e)
                    return fail(line, "unknown event '" + name + "'");
                s.events.push_back(*e);
            }
            return true;
        }
        if (key == "pair") {
            if (args.size() != 2)
                return fail(line, "pair expects two event names");
            const auto a = findEvent(args[0]);
            const auto b = findEvent(args[1]);
            if (!a || !b)
                return fail(line, "unknown event in pair");
            s.pairs.emplace_back(*a, *b);
            return true;
        }
        if (key == "repetitions")
            return integer(key, args, line, s.repetitions);
        if (key == "periods")
            return integer(key, args, line, s.settings.measurePeriods);
        if (key == "alternation") {
            if (auto v = quantity(key, Dim::Frequency, 1e3, args, line))
                s.settings.alternation = Frequency(*v);
            return error.empty();
        }
        if (key == "distance") {
            if (auto v = quantity(key, Dim::Length, 1e-2, args, line))
                s.settings.distance = Distance(*v);
            return error.empty();
        }
        if (key == "band") {
            if (auto v = quantity(key, Dim::Frequency, 1.0, args, line))
                s.settings.bandHz = *v;
            return error.empty();
        }
        if (key == "span") {
            if (auto v = quantity(key, Dim::Frequency, 1.0, args, line))
                s.settings.spanHz = *v;
            return error.empty();
        }
        if (key == "rbw") {
            if (auto v = quantity(key, Dim::Frequency, 1.0, args, line))
                s.settings.rbwHz = *v;
            return error.empty();
        }
        if (key == "clock") {
            if (auto v = quantity(key, Dim::Frequency, 1e9, args, line))
                s.clockOverride = Frequency(*v);
            return error.empty();
        }
        if (key == "l1") {
            if (auto v = quantity(key, Dim::Size, 1024.0, args, line))
                s.l1SizeBytes = static_cast<std::uint64_t>(*v);
            return error.empty();
        }
        if (key == "l2") {
            if (auto v = quantity(key, Dim::Size, 1024.0, args, line))
                s.l2SizeBytes = static_cast<std::uint64_t>(*v);
            return error.empty();
        }
        if (key == "pairing") {
            if (args.size() == 1 && args[0] == "equal-duration") {
                s.settings.pairing = kernels::PairingMode::EqualDuration;
                return true;
            }
            if (args.size() == 1 && args[0] == "equal-counts") {
                s.settings.pairing = kernels::PairingMode::EqualCounts;
                return true;
            }
            return fail(line, "pairing expects equal-duration or "
                              "equal-counts");
        }
        if (key == "retry-attempts") {
            std::size_t attempts = 0;
            if (!integer(key, args, line, attempts))
                return false;
            s.retryAttempts = attempts;
            return true;
        }
        if (key == "retry-backoff") {
            if (auto v = quantity(key, Dim::Time, 1e-3, args, line))
                s.retryBackoffSeconds = *v;
            return error.empty();
        }
        if (key == "fault-plan") {
            if (args.empty())
                return fail(line, "fault-plan expects a "
                                  "<kind>@<target>[,...] spec");
            std::string plan;
            for (const auto &arg : args) {
                if (!plan.empty())
                    plan += ',';
                plan += arg;
            }
            s.faultPlan = plan;
            return true;
        }
        if (key == "channel") {
            if (args.size() == 1 && args[0] == "em") {
                s.settings.powerRail = false;
                s.settings.timingChannel = false;
                return true;
            }
            if (args.size() == 1 && args[0] == "power") {
                s.settings.powerRail = true;
                s.settings.timingChannel = false;
                return true;
            }
            if (args.size() == 1 && args[0] == "timing") {
                s.settings.powerRail = false;
                s.settings.timingChannel = true;
                return true;
            }
            return fail(line, "channel expects em, power or timing");
        }
        if (key == "speculation-window") {
            std::size_t window = 0;
            if (!integer(key, args, line, window))
                return false;
            s.settings.specWindow =
                static_cast<std::uint32_t>(window);
            return true;
        }
        return fail(line, "unknown key '" + key + "'");
    }
};

} // namespace

std::size_t
CampaignSpec::lineOf(const std::string &field) const
{
    const auto it = fieldLines.find(field);
    if (it != fieldLines.end())
        return it->second;

    // No spec line carries this field verbatim; attribute the
    // finding to the nearest line that configured it rather than
    // reporting line 0.
    const auto firstOf = [this](
                             std::initializer_list<const char *>
                                 keys) -> std::size_t {
        for (const char *k : keys) {
            const auto kit = fieldLines.find(k);
            if (kit != fieldLines.end())
                return kit->second;
        }
        return 0;
    };

    // Geometry findings on a machine without overrides ride on the
    // machine line.
    if (field == "l1" || field == "l2" || field == "clock")
        return firstOf({"machine", "campaign"});

    // Per-event footprint findings use the event name as the field;
    // per-kernel findings use the kernel (program) name. Both were
    // chosen by the pair/events lines.
    bool eventish = field == "kernel" ||
                    field == "alternation kernel" ||
                    field.rfind("savat_", 0) == 0;
    if (!eventish) {
        for (const auto e : kernels::extendedEvents()) {
            if (field == kernels::eventName(e)) {
                eventish = true;
                break;
            }
        }
    }
    if (eventish)
        return firstOf({"pair", "events", "machine", "campaign"});
    return 0;
}

bool
CampaignSpec::machineKnown() const
{
    for (const auto &m : uarch::caseStudyMachines()) {
        if (m.id == machineId)
            return true;
    }
    return false;
}

uarch::MachineConfig
CampaignSpec::machine() const
{
    auto m = uarch::machineById(machineId);
    if (clockOverride)
        m.clock = *clockOverride;
    if (l1SizeBytes)
        m.l1.sizeBytes = static_cast<std::uint32_t>(*l1SizeBytes);
    if (l2SizeBytes)
        m.l2.sizeBytes = static_cast<std::uint32_t>(*l2SizeBytes);
    return m;
}

std::vector<kernels::EventKind>
CampaignSpec::effectiveEvents() const
{
    return events.empty() ? kernels::allEvents() : events;
}

SpecParseResult
parseCampaignSpec(std::istream &in, const std::string &filename)
{
    Parser p;
    p.spec.file = filename;

    std::string raw;
    std::size_t lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        const auto hash = raw.find('#');
        if (hash != std::string::npos)
            raw.erase(hash);
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        auto tokens = splitWhitespace(line);
        const std::string key = tokens.front();
        tokens.erase(tokens.begin());
        if (!p.handle(key, tokens, lineno))
            break;
    }

    SpecParseResult result;
    result.spec = std::move(p.spec);
    result.ok = p.error.empty();
    result.error = std::move(p.error);
    result.errorLine = p.errorLine;
    return result;
}

SpecParseResult
parseCampaignSpecFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        SpecParseResult result;
        result.error = "cannot open " + path;
        return result;
    }
    return parseCampaignSpec(in, path);
}

} // namespace savat::analysis
