#include "analysis/checker.hh"

#include <set>
#include <utility>

#include "analysis/ir/analyzer.hh"
#include "kernels/events.hh"
#include "support/strings.hh"

namespace savat::analysis {

using kernels::EventKind;

Checker::Checker(CheckerOptions options) : _options(options) {}

Report
Checker::check(const CampaignSpec &spec) const
{
    Report out;
    checkUnits(spec, _options, out);

    if (!spec.machineKnown()) {
        std::string known;
        for (const auto &m : uarch::caseStudyMachines())
            known += (known.empty() ? "" : ", ") + m.id;
        out.add(DiagId::UnknownMachine, "machine",
                "'" + spec.machineId +
                    "' is not a registered machine",
                "known machines: " + known);
    } else {
        const auto m = spec.machine();
        checkMachine(m, out);
        checkSpectral(m, spec.settings, _options, out);
        checkSpeculation(m, spec.settings, out);

        // Geometry errors make every footprint/burst statement
        // about cache levels meaningless; stop at the root cause.
        if (!out.has(DiagId::InvalidGeometry)) {
            const auto events = spec.effectiveEvents();
            std::set<EventKind> used(events.begin(), events.end());
            for (const auto &[a, b] : spec.pairs) {
                used.insert(a);
                used.insert(b);
            }
            for (auto e : used)
                checkEventFootprint(m, e, out);

            // Distinct unordered combinations cover the full matrix
            // without repeating each finding twice.
            std::set<std::pair<EventKind, EventKind>> combos;
            if (spec.pairs.empty()) {
                for (auto a : events)
                    for (auto b : events)
                        combos.insert(std::minmax(a, b));
            } else {
                for (const auto &[a, b] : spec.pairs)
                    combos.insert(std::minmax(a, b));
            }
            for (const auto &[a, b] : combos) {
                checkPairBursts(m, a, b, spec.settings, _options,
                                out);
            }
            if (_options.lintKernels) {
                for (const auto &[a, b] : combos) {
                    // Burst lengths do not change the kernel shape;
                    // tiny bursts keep the lint build cheap.
                    const auto kernel =
                        kernels::buildAlternationKernel(m, a, b, 2,
                                                        2);
                    lintKernel(kernel, out);
                    if (!_options.analyzeKernels)
                        continue;
                    const auto ka = ir::analyzeKernel(kernel, &m);
                    for (auto d : ka.report.diagnostics()) {
                        // The kernel was chosen by the spec's
                        // pair/events lines; the message keeps the
                        // kernel-line provenance.
                        d.field = spec.pairs.empty() ? "events"
                                                     : "pair";
                        d.file.clear();
                        d.line = 0;
                        out.add(std::move(d));
                    }
                }
            }
        }

        for (const auto &[a, b] : spec.pairs) {
            if (a == b) {
                out.add(DiagId::DegeneratePair, "pair",
                        format("%s/%s measures the same event "
                               "against itself: the measurement "
                               "floor, not an attacker-visible "
                               "difference",
                               kernels::eventName(a),
                               kernels::eventName(b)),
                        "diagonal cells quantify the floor; make "
                        "sure that is the intent");
            }
        }
    }

    // Attach the spec's source locations.
    Report annotated;
    for (auto d : out.diagnostics()) {
        d.file = spec.file;
        if (d.line == 0)
            d.line = spec.lineOf(d.field);
        annotated.add(std::move(d));
    }
    return annotated;
}

Report
Checker::checkMeasurement(const uarch::MachineConfig &m,
                          const MeasurementSettings &s) const
{
    CampaignSpec value_view;
    value_view.settings = s;

    Report out;
    checkUnits(value_view, _options, out);
    checkMachine(m, out);
    checkSpectral(m, s, _options, out);
    checkSpeculation(m, s, out);
    return out;
}

Report
Checker::checkPair(const uarch::MachineConfig &m, EventKind a,
                   EventKind b, const MeasurementSettings &s) const
{
    Report out;
    checkEventFootprint(m, a, out);
    if (b != a)
        checkEventFootprint(m, b, out);
    checkPairBursts(m, a, b, s, _options, out);
    return out;
}

} // namespace savat::analysis
