/**
 * @file
 * The individual static checks behind savat::analysis::Checker.
 *
 * Each function inspects one aspect of a campaign — measurement
 * settings, machine geometry, burst solvability, generated kernels —
 * without running any simulation, and appends its findings to a
 * Report. Checker composes them; core calls the focused ones from
 * the Meter/Campaign entry points.
 */

#ifndef SAVAT_ANALYSIS_CHECKS_HH
#define SAVAT_ANALYSIS_CHECKS_HH

#include "analysis/diagnostic.hh"
#include "analysis/spec.hh"
#include "isa/instruction.hh"
#include "kernels/generator.hh"
#include "uarch/machine.hh"

namespace savat::analysis {

/** Tunable thresholds of the checker. */
struct CheckerOptions
{
    /** SAV-B002: allowed realized-frequency error from integer
     * burst-length rounding (fraction of the intended frequency). */
    double frequencyTolerance = 0.005;

    /** SAV-B003: acceptable duty-cycle range under EqualCounts. */
    double dutyMin = 0.2;
    double dutyMax = 0.8;

    /** SAV-S004: distances outside [min, max] are flagged as
     * extrapolated beyond the propagation model's anchors. */
    double distanceMinM = 0.05;
    double distanceMaxM = 2.0;

    /** SAV-S002: warn when rbw exceeds band/rbwBandRatio. */
    double rbwBandRatio = 10.0;

    /** Build and lint the generated kernels (slightly costlier). */
    bool lintKernels = true;

    /**
     * Run the dataflow analyzer (savat::analysis::ir) over the
     * generated kernels: SAV-D0xx dataflow findings plus the
     * SAV-P0xx trip-count/termination/footprint/symmetry proofs.
     * Requires lintKernels.
     */
    bool analyzeKernels = true;
};

/**
 * Static estimate of the steady-state cycles per iteration of an
 * event's half-loop: the loop body priced with the machine's latency
 * table and the cache behaviour the event's footprint implies. A
 * cost model, not a simulation — accurate to a few percent for the
 * pipelined machines, which is enough for solvability checks.
 */
double estimateIterationCycles(const uarch::MachineConfig &m,
                               kernels::EventKind e);

/**
 * SAV-U001/U002/U003: value sanity and the spec's unit audit trail.
 */
void checkUnits(const CampaignSpec &spec, const CheckerOptions &opts,
                Report &out);

/**
 * SAV-K005 (+U001 for the clock): cache geometry realizable on the
 * simulated machine.
 */
void checkMachine(const uarch::MachineConfig &m, Report &out);

/**
 * SAV-S001..S005: band/span/RBW consistency, Nyquist of the
 * cycle-sampled activity trace, antenna band, propagation-model
 * validity.
 */
void checkSpectral(const uarch::MachineConfig &m,
                   const MeasurementSettings &s,
                   const CheckerOptions &opts, Report &out);

/**
 * SAV-B001..B003 for one pair: burst lengths hitting the intended
 * alternation frequency must exist (the paper's Section III
 * precondition), survive integer rounding within tolerance, and —
 * under EqualCounts — keep a usable duty cycle.
 */
void checkPairBursts(const uarch::MachineConfig &m,
                     kernels::EventKind a, kernels::EventKind b,
                     const MeasurementSettings &s,
                     const CheckerOptions &opts, Report &out);

/**
 * SAV-1901..1903: speculation / timing-channel configuration. The
 * timing channel reads the cache side effects of wrong-path loads,
 * so measuring it on an in-order target only shows the architectural
 * footprint difference (SAV-1901, warning); a speculation window
 * beyond any realistic reorder depth is a configuration error
 * (SAV-1902); and the scalar ablation model never speculates, so a
 * window on it silently does nothing (SAV-1903, warning).
 */
void checkSpeculation(const uarch::MachineConfig &m,
                      const MeasurementSettings &s, Report &out);

/**
 * SAV-K003: the event's sweep footprint must create the cache
 * behaviour its name claims on this machine (an LDL1 sweep must fit
 * in L1, an LDL2 sweep must overflow L1 but stay in L2, an LDM sweep
 * must overflow L2).
 */
void checkEventFootprint(const uarch::MachineConfig &m,
                         kernels::EventKind e, Report &out);

/**
 * SAV-K001: every instruction's operand shapes must be legal for the
 * modeled x86 subset, and branch targets must stay inside the
 * program. `what` names the program in messages.
 */
void lintProgram(const isa::Program &program, const std::string &what,
                 Report &out);

/**
 * SAV-K001/K002: full kernel lint — the operand pass plus the
 * alternation-kernel structure invariants (period and half-boundary
 * marks present, endless A/B loop, non-empty bursts).
 */
void lintKernel(const kernels::AlternationKernel &kernel, Report &out);

} // namespace savat::analysis

#endif // SAVAT_ANALYSIS_CHECKS_HH
