#include "analysis/diagnostic.hh"

#include <sstream>

#include "support/logging.hh"

namespace savat::analysis {

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
      default: SAVAT_PANIC("bad severity");
    }
}

const char *
diagIdName(DiagId id)
{
    switch (id) {
      case DiagId::BurstUnsolvable: return "SAV-B001";
      case DiagId::BurstQuantized: return "SAV-B002";
      case DiagId::DutySkewed: return "SAV-B003";
      case DiagId::InvalidOperand: return "SAV-K001";
      case DiagId::KernelStructure: return "SAV-K002";
      case DiagId::FootprintMismatch: return "SAV-K003";
      case DiagId::DegeneratePair: return "SAV-K004";
      case DiagId::InvalidGeometry: return "SAV-K005";
      case DiagId::BandExceedsSpan: return "SAV-S001";
      case DiagId::RbwTooCoarse: return "SAV-S002";
      case DiagId::ToneAboveNyquist: return "SAV-S003";
      case DiagId::DistanceOutsideModel: return "SAV-S004";
      case DiagId::ToneBelowAntennaBand: return "SAV-S005";
      case DiagId::NonpositiveQuantity: return "SAV-U001";
      case DiagId::UnitMismatch: return "SAV-U002";
      case DiagId::UnitMissing: return "SAV-U003";
      case DiagId::UnknownMachine: return "SAV-C001";
      case DiagId::RetryPolicyInvalid: return "SAV-1801";
      case DiagId::RetryBackoffExcessive: return "SAV-1802";
      case DiagId::FaultPlanInvalid: return "SAV-1803";
      case DiagId::FaultPlanUnreachable: return "SAV-1804";
      case DiagId::UninitializedRead: return "SAV-D001";
      case DiagId::DeadStore: return "SAV-D002";
      case DiagId::UnreachableCode: return "SAV-D003";
      case DiagId::IrreducibleFlow: return "SAV-D004";
      case DiagId::TripCountMismatch: return "SAV-P001";
      case DiagId::NonTerminatingLoop: return "SAV-P002";
      case DiagId::FootprintProofFailed: return "SAV-P003";
      case DiagId::AsymmetricHalves: return "SAV-P004";
      case DiagId::TimingWithoutSpec: return "SAV-1901";
      case DiagId::SpecWindowExcessive: return "SAV-1902";
      case DiagId::SpecOnScalarModel: return "SAV-1903";
      default: SAVAT_PANIC("bad diagnostic id");
    }
}

const char *
diagIdSlug(DiagId id)
{
    switch (id) {
      case DiagId::BurstUnsolvable: return "burst-unsolvable";
      case DiagId::BurstQuantized: return "burst-quantized";
      case DiagId::DutySkewed: return "duty-skewed";
      case DiagId::InvalidOperand: return "invalid-operand";
      case DiagId::KernelStructure: return "kernel-structure";
      case DiagId::FootprintMismatch: return "footprint-mismatch";
      case DiagId::DegeneratePair: return "degenerate-pair";
      case DiagId::InvalidGeometry: return "invalid-geometry";
      case DiagId::BandExceedsSpan: return "band-exceeds-span";
      case DiagId::RbwTooCoarse: return "rbw-too-coarse";
      case DiagId::ToneAboveNyquist: return "tone-above-nyquist";
      case DiagId::DistanceOutsideModel: return "distance-outside-model";
      case DiagId::ToneBelowAntennaBand: return "tone-below-antenna-band";
      case DiagId::NonpositiveQuantity: return "nonpositive-quantity";
      case DiagId::UnitMismatch: return "unit-mismatch";
      case DiagId::UnitMissing: return "unit-missing";
      case DiagId::UnknownMachine: return "unknown-machine";
      case DiagId::RetryPolicyInvalid: return "retry-policy-invalid";
      case DiagId::RetryBackoffExcessive:
        return "retry-backoff-excessive";
      case DiagId::FaultPlanInvalid: return "fault-plan-invalid";
      case DiagId::FaultPlanUnreachable:
        return "fault-plan-unreachable";
      case DiagId::UninitializedRead: return "uninitialized-read";
      case DiagId::DeadStore: return "dead-store";
      case DiagId::UnreachableCode: return "unreachable-code";
      case DiagId::IrreducibleFlow: return "irreducible-control-flow";
      case DiagId::TripCountMismatch: return "trip-count-mismatch";
      case DiagId::NonTerminatingLoop: return "non-terminating-loop";
      case DiagId::FootprintProofFailed:
        return "footprint-proof-failed";
      case DiagId::AsymmetricHalves: return "asymmetric-halves";
      case DiagId::TimingWithoutSpec:
        return "timing-without-speculation";
      case DiagId::SpecWindowExcessive:
        return "speculation-window-excessive";
      case DiagId::SpecOnScalarModel:
        return "speculation-on-scalar-model";
      default: SAVAT_PANIC("bad diagnostic id");
    }
}

Severity
diagIdSeverity(DiagId id)
{
    switch (id) {
      case DiagId::BurstUnsolvable:
      case DiagId::InvalidOperand:
      case DiagId::KernelStructure:
      case DiagId::FootprintMismatch:
      case DiagId::InvalidGeometry:
      case DiagId::BandExceedsSpan:
      case DiagId::ToneAboveNyquist:
      case DiagId::NonpositiveQuantity:
      case DiagId::UnitMismatch:
      case DiagId::UnknownMachine:
      case DiagId::RetryPolicyInvalid:
      case DiagId::FaultPlanInvalid:
      case DiagId::UninitializedRead:
      case DiagId::IrreducibleFlow:
      case DiagId::TripCountMismatch:
      case DiagId::NonTerminatingLoop:
      case DiagId::FootprintProofFailed:
      case DiagId::AsymmetricHalves:
      case DiagId::SpecWindowExcessive:
        return Severity::Error;
      case DiagId::BurstQuantized:
      case DiagId::DutySkewed:
      case DiagId::RbwTooCoarse:
      case DiagId::DistanceOutsideModel:
      case DiagId::ToneBelowAntennaBand:
      case DiagId::UnitMissing:
      case DiagId::RetryBackoffExcessive:
      case DiagId::FaultPlanUnreachable:
      case DiagId::DeadStore:
      case DiagId::UnreachableCode:
      case DiagId::TimingWithoutSpec:
      case DiagId::SpecOnScalarModel:
        return Severity::Warning;
      case DiagId::DegeneratePair:
        return Severity::Note;
      default:
        SAVAT_PANIC("bad diagnostic id");
    }
}

std::string
Diagnostic::toString() const
{
    std::ostringstream oss;
    if (!file.empty())
        oss << file << ":";
    if (line > 0)
        oss << line << ":";
    if (!file.empty() || line > 0)
        oss << " ";
    oss << severityName(severity) << "[" << diagIdName(id) << "] "
        << diagIdSlug(id) << ": " << message;
    if (!field.empty())
        oss << " (field: " << field << ")";
    if (!hint.empty())
        oss << "\n  hint: " << hint;
    return oss.str();
}

void
Report::add(DiagId id, std::string field, std::string message,
            std::string hint)
{
    Diagnostic d;
    d.id = id;
    d.severity = diagIdSeverity(id);
    d.field = std::move(field);
    d.message = std::move(message);
    d.hint = std::move(hint);
    _diags.push_back(std::move(d));
}

void
Report::add(Diagnostic d)
{
    _diags.push_back(std::move(d));
}

void
Report::merge(const Report &other)
{
    _diags.insert(_diags.end(), other._diags.begin(),
                  other._diags.end());
}

std::size_t
Report::count(Severity s) const
{
    std::size_t n = 0;
    for (const auto &d : _diags) {
        if (d.severity == s)
            ++n;
    }
    return n;
}

std::size_t
Report::count(DiagId id) const
{
    std::size_t n = 0;
    for (const auto &d : _diags) {
        if (d.id == id)
            ++n;
    }
    return n;
}

void
Report::render(std::ostream &os) const
{
    for (const auto &d : _diags)
        os << d.toString() << "\n";
}

std::string
Report::toString() const
{
    std::ostringstream oss;
    render(oss);
    return oss.str();
}

std::string
Report::errorSummary() const
{
    std::ostringstream oss;
    for (const auto &d : _diags) {
        if (d.severity == Severity::Error)
            oss << d.toString() << "\n";
    }
    return oss.str();
}

} // namespace savat::analysis
