/**
 * @file
 * Machine-readable diagnostic output for savat_lint.
 *
 * `--format=json` renders one JSON document covering every spec on
 * the command line under the stable `savat-lint-diagnostics-v1`
 * schema:
 *
 *     {
 *       "schema": "savat-lint-diagnostics-v1",
 *       "exitCode": 1,
 *       "specs": [
 *         {
 *           "file": "examples/specs/bad.spec",
 *           "parseFailed": false,
 *           "errors": 1, "warnings": 0, "notes": 0,
 *           "diagnostics": [
 *             { "id": "SAV-P001", "slug": "trip-count-mismatch",
 *               "severity": "error", "field": "pair", "line": 7,
 *               "message": "...", "hint": "..." }
 *           ]
 *         }
 *       ]
 *     }
 *
 * Exit codes (mirrored in the document): 0 all specs clean of
 * errors, 1 at least one error-level finding (or a warning under
 * --werror), 2 usage or spec parse failure.
 *
 * A minimal JSON reader for exactly this schema lives here too, so
 * tests (and downstream tooling written against libsavat) can
 * round-trip the document without an external JSON dependency.
 */

#ifndef SAVAT_ANALYSIS_JSONOUT_HH
#define SAVAT_ANALYSIS_JSONOUT_HH

#include <string>
#include <vector>

#include "analysis/diagnostic.hh"

namespace savat::analysis {

/** Schema identifier of the lint JSON document. */
inline constexpr const char *kLintJsonSchema =
    "savat-lint-diagnostics-v1";

/** One spec's lint outcome, ready for JSON rendering. */
struct SpecLintResult
{
    std::string file;
    bool parseFailed = false;
    std::string parseError;       //!< set when parseFailed
    std::size_t parseErrorLine = 0;
    Report report;                //!< empty when parseFailed
};

/** JSON-escape a string (quotes not included). */
std::string jsonEscape(const std::string &s);

/** Render the whole lint run as one JSON document. */
std::string lintResultsToJson(const std::vector<SpecLintResult> &specs,
                              int exitCode);

/** Parsed-back view of the document (for round-trip consumers). */
struct ParsedLintJson
{
    std::string schema;
    int exitCode = 0;

    struct Spec
    {
        std::string file;
        bool parseFailed = false;
        std::string parseError;
        std::size_t parseErrorLine = 0;
        std::size_t errors = 0, warnings = 0, notes = 0;
        std::vector<Diagnostic> diagnostics;
    };
    std::vector<Spec> specs;
};

/**
 * Parse a savat-lint-diagnostics-v1 document. Returns false (with
 * `error` set) on malformed input or an unknown schema. Diagnostic
 * ids are mapped back to DiagId (NumIds for unknown ids, so newer
 * documents degrade gracefully).
 */
bool parseLintJson(const std::string &text, ParsedLintJson &out,
                   std::string &error);

} // namespace savat::analysis

#endif // SAVAT_ANALYSIS_JSONOUT_HH
