#include "analysis/jsonout.hh"

#include <cctype>
#include <sstream>

#include "support/strings.hh"

namespace savat::analysis {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out += c;
            break;
        }
    }
    return out;
}

namespace {

void
writeDiagnostic(std::ostringstream &oss, const Diagnostic &d,
                const char *indent)
{
    oss << indent << "{\n";
    oss << indent << "  \"id\": \"" << diagIdName(d.id) << "\",\n";
    oss << indent << "  \"slug\": \"" << diagIdSlug(d.id) << "\",\n";
    oss << indent << "  \"severity\": \"" << severityName(d.severity)
        << "\",\n";
    oss << indent << "  \"field\": \"" << jsonEscape(d.field)
        << "\",\n";
    oss << indent << "  \"file\": \"" << jsonEscape(d.file)
        << "\",\n";
    oss << indent << "  \"line\": " << d.line << ",\n";
    oss << indent << "  \"message\": \"" << jsonEscape(d.message)
        << "\",\n";
    oss << indent << "  \"hint\": \"" << jsonEscape(d.hint) << "\"\n";
    oss << indent << "}";
}

} // namespace

std::string
lintResultsToJson(const std::vector<SpecLintResult> &specs,
                  int exitCode)
{
    std::ostringstream oss;
    oss << "{\n";
    oss << "  \"schema\": \"" << kLintJsonSchema << "\",\n";
    oss << "  \"exitCode\": " << exitCode << ",\n";
    oss << "  \"specs\": [";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &s = specs[i];
        oss << (i ? ",\n" : "\n") << "    {\n";
        oss << "      \"file\": \"" << jsonEscape(s.file) << "\",\n";
        oss << "      \"parseFailed\": "
            << (s.parseFailed ? "true" : "false") << ",\n";
        if (s.parseFailed) {
            oss << "      \"parseError\": \""
                << jsonEscape(s.parseError) << "\",\n";
            oss << "      \"parseErrorLine\": " << s.parseErrorLine
                << ",\n";
        }
        oss << "      \"errors\": " << s.report.count(Severity::Error)
            << ",\n";
        oss << "      \"warnings\": "
            << s.report.count(Severity::Warning) << ",\n";
        oss << "      \"notes\": " << s.report.count(Severity::Note)
            << ",\n";
        oss << "      \"diagnostics\": [";
        const auto &diags = s.report.diagnostics();
        for (std::size_t j = 0; j < diags.size(); ++j) {
            oss << (j ? ",\n" : "\n");
            writeDiagnostic(oss, diags[j], "        ");
        }
        oss << (diags.empty() ? "]\n" : "\n      ]\n");
        oss << "    }";
    }
    oss << (specs.empty() ? "]\n" : "\n  ]\n");
    oss << "}\n";
    return oss.str();
}

namespace {

/** Minimal recursive-descent JSON reader for the lint schema. */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : _s(text) {}

    bool failed() const { return _failed; }
    const std::string &error() const { return _error; }

    void
    skipWs()
    {
        while (_i < _s.size() &&
               std::isspace(static_cast<unsigned char>(_s[_i]))) {
            ++_i;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (_i < _s.size() && _s[_i] == c) {
            ++_i;
            return true;
        }
        return fail(format("expected '%c' at offset %zu", c, _i));
    }

    bool
    peek(char c)
    {
        skipWs();
        return _i < _s.size() && _s[_i] == c;
    }

    bool
    readString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (_i < _s.size() && _s[_i] != '"') {
            char c = _s[_i++];
            if (c == '\\' && _i < _s.size()) {
                const char e = _s[_i++];
                switch (e) {
                  case 'n': c = '\n'; break;
                  case 'r': c = '\r'; break;
                  case 't': c = '\t'; break;
                  case 'u': {
                    if (_i + 4 > _s.size())
                        return fail("truncated \\u escape");
                    c = static_cast<char>(
                        std::stoi(_s.substr(_i, 4), nullptr, 16));
                    _i += 4;
                    break;
                  }
                  default: c = e; break;
                }
            }
            out += c;
        }
        if (_i >= _s.size())
            return fail("unterminated string");
        ++_i; // closing quote
        return true;
    }

    bool
    readNumber(long long &out)
    {
        skipWs();
        const std::size_t start = _i;
        if (_i < _s.size() && (_s[_i] == '-' || _s[_i] == '+'))
            ++_i;
        while (_i < _s.size() &&
               std::isdigit(static_cast<unsigned char>(_s[_i]))) {
            ++_i;
        }
        if (_i == start)
            return fail(format("expected number at offset %zu", _i));
        out = std::stoll(_s.substr(start, _i - start));
        return true;
    }

    bool
    readBool(bool &out)
    {
        skipWs();
        if (_s.compare(_i, 4, "true") == 0) {
            out = true;
            _i += 4;
            return true;
        }
        if (_s.compare(_i, 5, "false") == 0) {
            out = false;
            _i += 5;
            return true;
        }
        return fail(format("expected bool at offset %zu", _i));
    }

    /** Skip any value (for unknown keys: forward compatibility). */
    bool
    skipValue()
    {
        skipWs();
        if (_i >= _s.size())
            return fail("unexpected end of document");
        const char c = _s[_i];
        if (c == '"') {
            std::string tmp;
            return readString(tmp);
        }
        if (c == '{' || c == '[') {
            const char close = c == '{' ? '}' : ']';
            ++_i;
            skipWs();
            if (peek(close)) {
                ++_i;
                return true;
            }
            while (true) {
                if (c == '{') {
                    std::string key;
                    if (!readString(key) || !consume(':'))
                        return false;
                }
                if (!skipValue())
                    return false;
                skipWs();
                if (peek(',')) {
                    ++_i;
                    continue;
                }
                return consume(close);
            }
        }
        if (c == 't' || c == 'f') {
            bool b;
            return readBool(b);
        }
        long long n;
        return readNumber(n);
    }

    /**
     * Iterate an object: calls fn(key) for each member, with the
     * cursor positioned at the value. fn must consume the value.
     */
    template <typename Fn>
    bool
    readObject(Fn &&fn)
    {
        if (!consume('{'))
            return false;
        if (peek('}')) {
            ++_i;
            return true;
        }
        while (true) {
            std::string key;
            if (!readString(key) || !consume(':'))
                return false;
            if (!fn(key))
                return false;
            if (peek(',')) {
                ++_i;
                continue;
            }
            return consume('}');
        }
    }

    /** Iterate an array: calls fn() per element; fn consumes it. */
    template <typename Fn>
    bool
    readArray(Fn &&fn)
    {
        if (!consume('['))
            return false;
        if (peek(']')) {
            ++_i;
            return true;
        }
        while (true) {
            if (!fn())
                return false;
            if (peek(',')) {
                ++_i;
                continue;
            }
            return consume(']');
        }
    }

    bool
    fail(std::string why)
    {
        if (!_failed) {
            _failed = true;
            _error = std::move(why);
        }
        return false;
    }

  private:
    const std::string &_s;
    std::size_t _i = 0;
    bool _failed = false;
    std::string _error;
};

DiagId
diagIdByName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumDiagIds; ++i) {
        const auto id = static_cast<DiagId>(i);
        if (name == diagIdName(id))
            return id;
    }
    return DiagId::NumIds;
}

Severity
severityByName(const std::string &name)
{
    if (name == "note")
        return Severity::Note;
    if (name == "warning")
        return Severity::Warning;
    return Severity::Error;
}

bool
readDiagnostic(JsonReader &r, Diagnostic &d)
{
    return r.readObject([&](const std::string &key) {
        if (key == "id") {
            std::string v;
            if (!r.readString(v))
                return false;
            d.id = diagIdByName(v);
            return true;
        }
        if (key == "severity") {
            std::string v;
            if (!r.readString(v))
                return false;
            d.severity = severityByName(v);
            return true;
        }
        if (key == "message")
            return r.readString(d.message);
        if (key == "field")
            return r.readString(d.field);
        if (key == "hint")
            return r.readString(d.hint);
        if (key == "file")
            return r.readString(d.file);
        if (key == "line") {
            long long v;
            if (!r.readNumber(v))
                return false;
            d.line = v < 0 ? 0 : static_cast<std::size_t>(v);
            return true;
        }
        return r.skipValue(); // "slug" and future keys
    });
}

bool
readSpec(JsonReader &r, ParsedLintJson::Spec &spec)
{
    return r.readObject([&](const std::string &key) {
        if (key == "file")
            return r.readString(spec.file);
        if (key == "parseFailed")
            return r.readBool(spec.parseFailed);
        if (key == "parseError")
            return r.readString(spec.parseError);
        long long v;
        if (key == "parseErrorLine") {
            if (!r.readNumber(v))
                return false;
            spec.parseErrorLine = static_cast<std::size_t>(v);
            return true;
        }
        if (key == "errors") {
            if (!r.readNumber(v))
                return false;
            spec.errors = static_cast<std::size_t>(v);
            return true;
        }
        if (key == "warnings") {
            if (!r.readNumber(v))
                return false;
            spec.warnings = static_cast<std::size_t>(v);
            return true;
        }
        if (key == "notes") {
            if (!r.readNumber(v))
                return false;
            spec.notes = static_cast<std::size_t>(v);
            return true;
        }
        if (key == "diagnostics") {
            return r.readArray([&] {
                Diagnostic d;
                if (!readDiagnostic(r, d))
                    return false;
                spec.diagnostics.push_back(std::move(d));
                return true;
            });
        }
        return r.skipValue();
    });
}

} // namespace

bool
parseLintJson(const std::string &text, ParsedLintJson &out,
              std::string &error)
{
    JsonReader r(text);
    out = {};
    const bool ok = r.readObject([&](const std::string &key) {
        if (key == "schema")
            return r.readString(out.schema);
        if (key == "exitCode") {
            long long v;
            if (!r.readNumber(v))
                return false;
            out.exitCode = static_cast<int>(v);
            return true;
        }
        if (key == "specs") {
            return r.readArray([&] {
                ParsedLintJson::Spec spec;
                if (!readSpec(r, spec))
                    return false;
                out.specs.push_back(std::move(spec));
                return true;
            });
        }
        return r.skipValue();
    });
    if (!ok) {
        error = r.error().empty() ? "malformed JSON" : r.error();
        return false;
    }
    if (out.schema != kLintJsonSchema) {
        error = "unknown schema '" + out.schema + "'";
        return false;
    }
    return true;
}

} // namespace savat::analysis
