#include "analysis/ir/cfg.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/strings.hh"

namespace savat::analysis::ir {

using isa::Opcode;

namespace {

/** True when control never falls through to the next instruction. */
bool
endsFlow(const IrInst &ii)
{
    return ii.inst.op == Opcode::Jmp || ii.inst.op == Opcode::Hlt;
}

/** Reverse-postorder of the reachable blocks. */
std::vector<std::size_t>
reversePostorder(const Cfg &cfg)
{
    std::vector<std::size_t> order;
    std::vector<std::uint8_t> state(cfg.blocks.size(), 0);
    // Iterative DFS with an explicit stack (child cursor per frame).
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    if (!cfg.blocks.empty())
        stack.emplace_back(0, 0);
    if (!cfg.blocks.empty())
        state[0] = 1;
    while (!stack.empty()) {
        auto &[b, cursor] = stack.back();
        if (cursor < cfg.blocks[b].succs.size()) {
            const std::size_t s = cfg.blocks[b].succs[cursor++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            order.push_back(b);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace

bool
Cfg::dominates(std::size_t a, std::size_t b) const
{
    while (b != kNone) {
        if (a == b)
            return true;
        if (b == 0)
            return false;
        b = blocks[b].idom;
    }
    return false;
}

std::size_t
Cfg::innermostLoopOf(std::size_t block) const
{
    std::size_t best = kNone, bestDepth = 0;
    for (std::size_t i = 0; i < loops.size(); ++i) {
        const auto &loop = loops[i];
        if (loop.depth >= bestDepth &&
            std::binary_search(loop.blocks.begin(), loop.blocks.end(),
                               block)) {
            best = i;
            bestDepth = loop.depth;
        }
    }
    return best;
}

Cfg
buildCfg(const IrProgram &prog)
{
    Cfg cfg;
    const std::size_t n = prog.size();
    cfg.blockOf.assign(n, Cfg::kNone);
    if (n == 0)
        return cfg;

    // 1. Leaders: entry, branch targets, fallthroughs of branches.
    std::set<std::size_t> leaders{0};
    for (std::size_t i = 0; i < n; ++i) {
        const auto &ii = prog.insts[i];
        if (ii.inst.isBranch()) {
            if (ii.inst.target >= 0 &&
                static_cast<std::size_t>(ii.inst.target) < n) {
                leaders.insert(
                    static_cast<std::size_t>(ii.inst.target));
            }
            if (i + 1 < n)
                leaders.insert(i + 1);
        } else if (ii.inst.op == Opcode::Hlt && i + 1 < n) {
            leaders.insert(i + 1);
        }
    }

    // 2. Blocks and the instruction->block map.
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        BasicBlock bb;
        bb.begin = *it;
        const auto next = std::next(it);
        bb.end = next == leaders.end() ? n : *next;
        cfg.blocks.push_back(bb);
    }
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        for (std::size_t i = cfg.blocks[b].begin;
             i < cfg.blocks[b].end; ++i) {
            cfg.blockOf[i] = b;
        }
    }

    // 3. Edges.
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        auto &bb = cfg.blocks[b];
        const auto &last = prog.insts[bb.end - 1];
        auto link = [&](std::size_t to) {
            bb.succs.push_back(to);
            cfg.blocks[to].preds.push_back(b);
        };
        if (last.inst.isBranch() && last.inst.target >= 0 &&
            static_cast<std::size_t>(last.inst.target) < n) {
            link(cfg.blockOf[static_cast<std::size_t>(
                last.inst.target)]);
        }
        if (!endsFlow(last) && bb.end < n)
            link(cfg.blockOf[bb.end]);
    }

    // 4. Reachability + iterative dominators over the RPO.
    const auto rpo = reversePostorder(cfg);
    std::vector<std::size_t> rpoIndex(cfg.blocks.size(), Cfg::kNone);
    for (std::size_t i = 0; i < rpo.size(); ++i) {
        cfg.blocks[rpo[i]].reachable = true;
        rpoIndex[rpo[i]] = i;
    }
    auto intersect = [&](std::size_t a, std::size_t b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = cfg.blocks[a].idom;
            while (rpoIndex[b] > rpoIndex[a])
                b = cfg.blocks[b].idom;
        }
        return a;
    };
    cfg.blocks[0].idom = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 1; i < rpo.size(); ++i) {
            const std::size_t b = rpo[i];
            std::size_t newIdom = Cfg::kNone;
            for (const std::size_t p : cfg.blocks[b].preds) {
                if (!cfg.blocks[p].reachable ||
                    cfg.blocks[p].idom == Cfg::kNone) {
                    continue;
                }
                newIdom = newIdom == Cfg::kNone
                              ? p
                              : intersect(newIdom, p);
            }
            if (newIdom != Cfg::kNone &&
                cfg.blocks[b].idom != newIdom) {
                cfg.blocks[b].idom = newIdom;
                changed = true;
            }
        }
    }
    cfg.blocks[0].idom = Cfg::kNone; // entry has no dominator

    // 5. Natural loops from backedges (head dominates tail).
    struct Backedge
    {
        std::size_t tail, head, branchInst;
    };
    std::vector<Backedge> backedges;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.blocks[b].reachable)
            continue;
        for (const std::size_t s : cfg.blocks[b].succs) {
            // A retreating edge targets a block that begins at or
            // before the tail; only dominated heads form natural
            // loops.
            if (cfg.blocks[s].begin > cfg.blocks[b].begin)
                continue;
            if (cfg.dominates(s, b)) {
                backedges.push_back({b, s, cfg.blocks[b].end - 1});
            } else {
                cfg.irreducible = true;
            }
        }
    }

    // Merge backedges sharing a header into one loop.
    std::vector<std::size_t> headerLoop(cfg.blocks.size(), Cfg::kNone);
    for (const auto &be : backedges) {
        std::size_t li = headerLoop[be.head];
        if (li == Cfg::kNone) {
            li = cfg.loops.size();
            headerLoop[be.head] = li;
            NaturalLoop loop;
            loop.header = be.head;
            cfg.loops.push_back(loop);
        }
        auto &loop = cfg.loops[li];
        loop.backedges.push_back(be.branchInst);
        // Classic natural-loop body collection: walk preds back from
        // the tail until the header.
        std::set<std::size_t> body{be.head, be.tail};
        std::vector<std::size_t> work{be.tail};
        while (!work.empty()) {
            const std::size_t b = work.back();
            work.pop_back();
            if (b == be.head)
                continue;
            for (const std::size_t p : cfg.blocks[b].preds) {
                if (cfg.blocks[p].reachable && body.insert(p).second)
                    work.push_back(p);
            }
        }
        for (const std::size_t b : loop.blocks)
            body.insert(b);
        loop.blocks.assign(body.begin(), body.end());
    }

    // Exits and nesting depth.
    for (auto &loop : cfg.loops) {
        for (const std::size_t b : loop.blocks) {
            for (const std::size_t s : cfg.blocks[b].succs) {
                if (!std::binary_search(loop.blocks.begin(),
                                        loop.blocks.end(), s)) {
                    loop.exits.push_back(b);
                    break;
                }
            }
        }
        for (const auto &other : cfg.loops) {
            if (&other != &loop && other.blocks.size() > loop.blocks.size() &&
                std::includes(other.blocks.begin(), other.blocks.end(),
                              loop.blocks.begin(), loop.blocks.end())) {
                ++loop.depth;
            }
        }
    }
    std::sort(cfg.loops.begin(), cfg.loops.end(),
              [](const NaturalLoop &a, const NaturalLoop &b) {
                  return a.depth != b.depth ? a.depth < b.depth
                                            : a.header < b.header;
              });
    return cfg;
}

std::string
Cfg::dump(const IrProgram &prog) const
{
    std::ostringstream oss;
    oss << "cfg of " << prog.name << ": " << blocks.size()
        << " block(s), " << loops.size() << " loop(s)\n";
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const auto &bb = blocks[b];
        oss << format("  bb%zu [%zu..%zu)", b, bb.begin, bb.end);
        if (!bb.reachable)
            oss << " UNREACHABLE";
        if (bb.idom != kNone)
            oss << format(" idom=bb%zu", bb.idom);
        oss << " succs={";
        for (std::size_t i = 0; i < bb.succs.size(); ++i)
            oss << (i ? "," : "") << "bb" << bb.succs[i];
        oss << "}\n";
        for (std::size_t i = bb.begin; i < bb.end; ++i) {
            oss << format("    %3zu: %s\n", i,
                          prog.insts[i].inst.toString().c_str());
        }
    }
    for (std::size_t l = 0; l < loops.size(); ++l) {
        const auto &loop = loops[l];
        oss << format("  loop%zu depth=%zu header=bb%zu blocks={", l,
                      loop.depth, loop.header);
        for (std::size_t i = 0; i < loop.blocks.size(); ++i)
            oss << (i ? "," : "") << "bb" << loop.blocks[i];
        oss << "} exits=" << loop.exits.size() << "\n";
    }
    if (irreducible)
        oss << "  control flow is irreducible\n";
    return oss.str();
}

} // namespace savat::analysis::ir
