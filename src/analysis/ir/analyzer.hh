/**
 * @file
 * The kernel analyzer: orchestrates the IR passes over one
 * alternation kernel and turns their facts into diagnostics.
 *
 * The passes run in dependency order — lower to IR, build the CFG,
 * liveness/initialization, interval propagation, A/B symmetry — and
 * their findings are emitted through the standard Diagnostic
 * machinery in two namespaces:
 *
 *   SAV-D0xx  dataflow findings (uninitialized reads, dead stores,
 *             unreachable code, irreducible control flow)
 *   SAV-P0xx  kernel proofs (trip counts vs burst counts,
 *             termination, footprint range vs claim and cache level,
 *             A/B structural symmetry)
 *
 * The proofs are cross-checks of the kernel's own metadata: the
 * derived burst-loop trip counts must equal countA/countB, the
 * proved touched byte range must equal maskA/maskB + 1 (and sit in
 * the cache level the event claims, when a machine is supplied), and
 * the halves must be identical outside the event slot. Any error
 * here means the simulation would measure something other than the
 * intended per-event signal, so callers fail fast before running.
 */

#ifndef SAVAT_ANALYSIS_IR_ANALYZER_HH
#define SAVAT_ANALYSIS_IR_ANALYZER_HH

#include "analysis/diagnostic.hh"
#include "analysis/ir/cfg.hh"
#include "analysis/ir/interval.hh"
#include "analysis/ir/ir.hh"
#include "analysis/ir/liveness.hh"
#include "analysis/ir/symmetry.hh"
#include "kernels/generator.hh"
#include "uarch/machine.hh"

namespace savat::analysis::ir {

/** Everything the analyzer derived about one kernel. */
struct KernelAnalysis
{
    IrProgram ir;
    Cfg cfg;
    LivenessResult liveness;
    IntervalResult intervals;
    SymmetryResult symmetry;

    /** The SAV-D/SAV-P findings. */
    Report report;

    bool ok() const { return !report.hasErrors(); }
};

/**
 * Analyze one alternation kernel. `machine` enables the cache-level
 * part of the footprint proof (the byte-range part runs regardless);
 * pass the machine the kernel was generated for, or nullptr when it
 * is unknown.
 */
KernelAnalysis analyzeKernel(const kernels::AlternationKernel &kernel,
                             const uarch::MachineConfig *machine);

} // namespace savat::analysis::ir

#endif // SAVAT_ANALYSIS_IR_ANALYZER_HH
