/**
 * @file
 * Forward constant/interval propagation over the kernel CFG.
 *
 * The abstract domain is unsigned 32-bit intervals with *tight*
 * bitwise transfer functions (the Hacker's Delight minOR/maxOR
 * bounds, AND via De Morgan), because the kernels' pointer-update
 * idiom is built from and/or masking:
 *
 *     mov ebx,esi / add ebx,64 / and ebx,mask /
 *     and esi,~mask / or esi,ebx
 *
 * With naive interval arithmetic the masked sweep never converges to
 * anything useful; with tight bitwise bounds plus threshold widening
 * (thresholds = the program's own immediates and their pairwise ORs)
 * and a few narrowing sweeps, the pointer provably settles on
 * exactly [base, base+mask] — which is what the footprint proof
 * needs.
 *
 * On top of the fixpoint the pass derives, per natural loop, a
 * termination verdict and an exact trip count when the loop follows
 * the counted idiom (counter initialized to a constant outside the
 * loop, stepped by dec/sub inside it, exited by the jne on that
 * step). Wrap-around is modeled: a step that can never hit zero
 * modulo 2^32 is proved non-terminating, one that hits it late
 * yields the exact (astronomical) modular trip count.
 */

#ifndef SAVAT_ANALYSIS_IR_INTERVAL_HH
#define SAVAT_ANALYSIS_IR_INTERVAL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ir/cfg.hh"
#include "analysis/ir/ir.hh"

namespace savat::analysis::ir {

/** An unsigned 32-bit interval (or bottom). */
struct Interval
{
    std::uint32_t lo = 0;
    std::uint32_t hi = 0xFFFFFFFFu;
    bool bottom = false;

    static Interval top() { return {}; }
    static Interval none() { return {0, 0, true}; }
    static Interval constant(std::uint32_t c) { return {c, c, false}; }

    bool isConst() const { return !bottom && lo == hi; }
    bool contains(std::uint32_t v) const
    {
        return !bottom && lo <= v && v <= hi;
    }
    std::uint64_t width() const
    {
        return bottom ? 0
                      : static_cast<std::uint64_t>(hi) - lo + 1;
    }

    bool operator==(const Interval &) const = default;

    std::string toString() const;
};

/** Hull of two intervals. */
Interval hull(const Interval &a, const Interval &b);

/** Tight unsigned bitwise bounds (Hacker's Delight 4-3). */
Interval intervalAnd(const Interval &a, const Interval &b);
Interval intervalOr(const Interval &a, const Interval &b);

/** Per-loop facts derived from the fixpoint. */
struct LoopFacts
{
    enum class Termination : std::uint8_t {
        Terminates, //!< proved; `trips` holds the exact count
        Infinite,   //!< proved: no exit, or no exit edge is feasible
        Unknown     //!< no statement possible
    };

    Termination verdict = Termination::Unknown;

    /** Exact iteration count (valid when verdict == Terminates). */
    std::uint64_t trips = 0;

    /** The counted-loop counter register, when the idiom matched. */
    bool counted = false;
    isa::Reg counter = isa::Reg::Ecx;
    std::uint32_t counterInit = 0; //!< constant entry value
    std::uint32_t step = 1;        //!< decrement per iteration
};

/** Interval of one memory access's address. */
struct MemFact
{
    std::size_t inst = 0;
    isa::Reg base = isa::Reg::Eax;
    MemAccess access = MemAccess::None;
    Interval addr;
};

/** Result of the interval pass. */
struct IntervalResult
{
    /** False when the fixpoint hit its safety cap (states are Top). */
    bool converged = true;

    /** Parallel to Cfg::loops. */
    std::vector<LoopFacts> loops;

    /** One entry per memory-accessing instruction, program order. */
    std::vector<MemFact> mems;

    /** Human-readable dump (savat_lint --dump-footprint). */
    std::string dump(const IrProgram &prog, const Cfg &cfg) const;
};

/** Run the interval fixpoint and derive loop/memory facts. */
IntervalResult analyzeIntervals(const IrProgram &prog, const Cfg &cfg);

} // namespace savat::analysis::ir

#endif // SAVAT_ANALYSIS_IR_INTERVAL_HH
