#include "analysis/ir/analyzer.hh"

#include <algorithm>

#include "kernels/events.hh"
#include "support/strings.hh"

namespace savat::analysis::ir {

using kernels::AlternationKernel;
using kernels::EventKind;
using kernels::KernelHalf;
using kernels::KernelRegion;

namespace {

/** Where in the kernel a finding sits, for the message text. */
std::string
provenance(const AlternationKernel &k, const IrProgram &ir,
           std::size_t inst)
{
    if (inst >= ir.size())
        return "kernel";
    std::string s = kernels::kernelHalfName(k.halfOf(inst));
    if (k.halfOf(inst) != KernelHalf::Prologue)
        s += format("/%s", kernels::eventName(k.eventOf(inst)));
    if (ir.insts[inst].line != 0)
        s += format(", kernel line %zu", ir.insts[inst].line);
    return s;
}

void
emit(Report &report, DiagId id, const AlternationKernel &k,
     const IrProgram &ir, std::size_t inst, std::string message,
     std::string hint)
{
    Diagnostic d;
    d.id = id;
    d.severity = diagIdSeverity(id);
    d.message = std::move(message);
    d.field = "kernel";
    d.hint = std::move(hint);
    d.file = ir.name;
    d.line = inst < ir.size() ? ir.insts[inst].line : 0;
    report.add(std::move(d));
    (void)k;
}

/** True when every instruction of the loop lies inside the region. */
bool
loopInside(const NaturalLoop &loop, const Cfg &cfg,
           const KernelRegion &region)
{
    for (const std::size_t b : loop.blocks) {
        if (!region.contains(cfg.blocks[b].begin) ||
            (cfg.blocks[b].end > cfg.blocks[b].begin &&
             !region.contains(cfg.blocks[b].end - 1))) {
            return false;
        }
    }
    return !loop.blocks.empty();
}

const char *
levelName(EventKind e)
{
    switch (e) {
      case EventKind::LDL1:
      case EventKind::STL1: return "the L1";
      case EventKind::LDL2:
      case EventKind::STL2: return "the L2";
      case EventKind::LDM:
      case EventKind::STM: return "main memory";
      default: return nullptr;
    }
}

/** The trip-count and termination proofs for one half's burst loop. */
void
checkHalfLoop(KernelAnalysis &ka, const AlternationKernel &k,
              KernelHalf half)
{
    const bool isA = half == KernelHalf::A;
    const KernelRegion &region = isA ? k.halfA : k.halfB;
    const std::uint64_t expected = isA ? k.countA : k.countB;
    const char *name = isA ? "A" : "B";

    // The burst loop is the outermost loop fully inside the half.
    std::size_t burst = Cfg::kNone;
    for (std::size_t li = 0; li < ka.cfg.loops.size(); ++li) {
        if (!loopInside(ka.cfg.loops[li], ka.cfg, region))
            continue;
        if (burst == Cfg::kNone ||
            ka.cfg.loops[li].blocks.size() >
                ka.cfg.loops[burst].blocks.size()) {
            burst = li;
        }
    }
    if (burst == Cfg::kNone) {
        emit(ka.report, DiagId::TripCountMismatch, k, ka.ir,
             region.begin,
             format("no burst loop found in the %s half, but "
                    "count%s is %llu",
                    name, name,
                    static_cast<unsigned long long>(expected)),
             "restore the dec/jne burst loop around the event slot");
        return;
    }

    for (std::size_t li = 0; li < ka.cfg.loops.size(); ++li) {
        if (!loopInside(ka.cfg.loops[li], ka.cfg, region))
            continue;
        const auto &loop = ka.cfg.loops[li];
        const auto &lf = ka.intervals.loops[li];
        const std::size_t anchor = ka.cfg.blocks[loop.header].begin;
        switch (lf.verdict) {
          case LoopFacts::Termination::Infinite:
            emit(ka.report, DiagId::NonTerminatingLoop, k, ka.ir,
                 anchor,
                 format("the %s burst loop can never exit: %s (%s)",
                        name,
                        loop.exits.empty()
                            ? "it has no exit edge"
                        : lf.counted
                            ? format("its counter steps by %u past "
                                     "zero and wraps forever",
                                     lf.step)
                                  .c_str()
                            : "no exit condition can ever be true",
                        provenance(k, ka.ir, anchor).c_str()),
                 "make the burst loop exit after its dec via jne");
            break;
          case LoopFacts::Termination::Terminates:
            if (li == burst && lf.trips != expected) {
                emit(ka.report, DiagId::TripCountMismatch, k, ka.ir,
                     anchor,
                     format("the %s burst loop provably executes "
                            "%llu iteration(s) but count%s from the "
                            "burst solver is %llu (%s)",
                            name,
                            static_cast<unsigned long long>(
                                lf.trips),
                            name,
                            static_cast<unsigned long long>(
                                expected),
                            provenance(k, ka.ir, anchor).c_str()),
                     "regenerate the kernel: the alternation "
                     "frequency solved for this pair assumes the "
                     "metadata count");
            }
            break;
          case LoopFacts::Termination::Unknown:
            if (li == burst) {
                emit(ka.report, DiagId::TripCountMismatch, k, ka.ir,
                     anchor,
                     format("cannot derive a trip count for the %s "
                            "burst loop, so the burst length cannot "
                            "be cross-checked against count%s=%llu "
                            "(%s)",
                            name, name,
                            static_cast<unsigned long long>(
                                expected),
                            provenance(k, ka.ir, anchor).c_str()),
                     "use the counted idiom: a constant burst count "
                     "in ecx, one dec per iteration, jne back");
            }
            break;
        }
    }
}

/** The footprint byte-range / set-coverage / cache-level proof. */
void
checkHalfFootprint(KernelAnalysis &ka, const AlternationKernel &k,
                   KernelHalf half, const uarch::MachineConfig *m)
{
    const bool isA = half == KernelHalf::A;
    const KernelRegion &region = isA ? k.halfA : k.halfB;
    const std::uint64_t base = isA ? k.baseA : k.baseB;
    const std::uint64_t mask = isA ? k.maskA : k.maskB;
    const EventKind event = isA ? k.a : k.b;
    const char *name = isA ? "A" : "B";

    Interval addr = Interval::none();
    std::size_t anchor = Cfg::kNone;
    for (const auto &mf : ka.intervals.mems) {
        if (!region.contains(mf.inst) || mf.addr.bottom)
            continue;
        addr = hull(addr, mf.addr);
        if (anchor == Cfg::kNone)
            anchor = mf.inst;
    }
    if (addr.bottom)
        return; // no memory access in this half

    const std::uint64_t claimed = mask + 1;
    if (addr.lo != base || addr.hi != base + mask) {
        emit(ka.report, DiagId::FootprintProofFailed, k, ka.ir,
             anchor,
             format("the %s half provably touches addresses "
                    "[0x%08x, 0x%08x] but its metadata claims "
                    "[0x%08llx, 0x%08llx] (%llu byte(s)) (%s)",
                    name, addr.lo, addr.hi,
                    static_cast<unsigned long long>(base),
                    static_cast<unsigned long long>(base + mask),
                    static_cast<unsigned long long>(claimed),
                    provenance(k, ka.ir, anchor).c_str()),
             "make the pointer-update masks match the event's "
             "footprint; the solved burst counts and the cache "
             "behaviour both depend on it");
        return;
    }

    // Cache-level claim: only when the metadata footprint is the
    // event's own (sequence kernels carry the sequence maximum).
    if (m == nullptr || kernels::footprintBytes(event, *m) != claimed)
        return;
    const char *level = levelName(event);
    if (level == nullptr)
        return; // non-memory event with an incidental access
    const bool okLevel =
        (event == EventKind::LDL1 || event == EventKind::STL1)
            ? claimed <= m->l1.sizeBytes
        : (event == EventKind::LDL2 || event == EventKind::STL2)
            ? claimed > m->l1.sizeBytes && claimed <= m->l2.sizeBytes
            : claimed > m->l2.sizeBytes;
    if (!okLevel) {
        emit(ka.report, DiagId::FootprintProofFailed, k, ka.ir,
             anchor,
             format("the %s half's proved working set of %llu "
                    "byte(s) cannot be serviced by %s on %s "
                    "(L1=%llu, L2=%llu bytes) yet event %s claims "
                    "it (%s)",
                    name, static_cast<unsigned long long>(claimed),
                    level, m->id.c_str(),
                    static_cast<unsigned long long>(m->l1.sizeBytes),
                    static_cast<unsigned long long>(m->l2.sizeBytes),
                    kernels::eventName(event),
                    provenance(k, ka.ir, anchor).c_str()),
             "size the sweep so the event is serviced by the level "
             "its name claims");
    }
}

} // namespace

KernelAnalysis
analyzeKernel(const AlternationKernel &kernel,
              const uarch::MachineConfig *machine)
{
    KernelAnalysis ka;
    ka.ir = lower(kernel.program);
    ka.cfg = buildCfg(ka.ir);

    // --- SAV-D004: irreducible control flow. ---
    if (ka.cfg.irreducible) {
        emit(ka.report, DiagId::IrreducibleFlow, kernel, ka.ir, 0,
             "control flow is irreducible (a loop body is entered "
             "other than through its header); no trip-count or "
             "termination proof is possible",
             "restructure the kernel so every loop has a single "
             "entry");
    }

    // --- SAV-D003: structurally unreachable blocks. ---
    for (const auto &bb : ka.cfg.blocks) {
        if (bb.reachable || bb.size() == 0)
            continue;
        emit(ka.report, DiagId::UnreachableCode, kernel, ka.ir,
             bb.begin,
             format("instructions %zu..%zu can never execute (%s)",
                    bb.begin, bb.end - 1,
                    provenance(kernel, ka.ir, bb.begin).c_str()),
             "delete the unreachable instructions; they distort "
             "nothing but hide intent");
    }

    // --- SAV-D001/D002: liveness findings. ---
    ka.liveness = analyzeLiveness(ka.ir, ka.cfg);
    for (const auto &ur : ka.liveness.uninitReads) {
        emit(ka.report, DiagId::UninitializedRead, kernel, ka.ir,
             ur.inst,
             format("'%s' reads %s before any path writes it (%s)",
                    ka.ir.insts[ur.inst].inst.toString().c_str(),
                    regSetToString(ur.regs).c_str(),
                    provenance(kernel, ka.ir, ur.inst).c_str()),
             "initialize the register in the kernel prologue");
    }
    for (const std::size_t i : ka.liveness.deadStores) {
        emit(ka.report, DiagId::DeadStore, kernel, ka.ir, i,
             format("'%s' computes a value no path ever reads (%s)",
                    ka.ir.insts[i].inst.toString().c_str(),
                    provenance(kernel, ka.ir, i).c_str()),
             "remove the dead instruction from the measured burst "
             "or use its result");
    }

    // --- Interval facts: trip counts, termination, footprints. ---
    ka.intervals = analyzeIntervals(ka.ir, ka.cfg);

    const bool halvesKnown =
        !kernel.halfA.empty() && !kernel.halfB.empty();
    if (!halvesKnown) {
        emit(ka.report, DiagId::AsymmetricHalves, kernel, ka.ir,
             SymmetryResult::kNoInst,
             "the kernel lacks its period/half marks, so the A and "
             "B halves cannot be attributed or compared",
             "emit mark 1 at the period start and mark 2 at the "
             "half boundary");
        return ka;
    }

    if (!ka.cfg.irreducible && ka.intervals.converged) {
        checkHalfLoop(ka, kernel, KernelHalf::A);
        checkHalfLoop(ka, kernel, KernelHalf::B);
        checkHalfFootprint(ka, kernel, KernelHalf::A, machine);
        checkHalfFootprint(ka, kernel, KernelHalf::B, machine);
    }

    // --- SAV-P004: A/B structural symmetry. ---
    ka.symmetry = checkSymmetry(kernel);
    for (const auto &mm : ka.symmetry.mismatches) {
        std::string where;
        if (mm.instA != SymmetryResult::kNoInst &&
            mm.instB != SymmetryResult::kNoInst) {
            where = format(
                " (kernel lines %zu vs %zu)",
                ka.ir.insts[mm.instA].line,
                ka.ir.insts[mm.instB].line);
        }
        emit(ka.report, DiagId::AsymmetricHalves, kernel, ka.ir,
             mm.instA,
             format("the A and B halves differ outside the event "
                    "slot: %s%s",
                    mm.why.c_str(), where.c_str()),
             "keep the halves identical except for the event under "
             "test; any other difference shows up in the measured "
             "spectrum");
    }
    return ka;
}

} // namespace savat::analysis::ir
