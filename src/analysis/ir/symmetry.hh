/**
 * @file
 * A/B structural-symmetry diff of an alternation kernel.
 *
 * The paper's methodology rests on the two halves of the kernel
 * being identical *except* for the event-under-test: any other
 * difference (an extra prologue instruction, a different pointer
 * update, a different loop shape) shows up in the measured spectrum
 * and corrupts the per-event signal. This pass compares the A and B
 * halves instruction-for-instruction outside the event slot — the
 * window between the `cdq` dividend sanitizer and the `dec` loop
 * step — under the ptr1<->ptr2 (esi<->edi) renaming. Immediates may
 * differ only where the kernel is parameterized: the burst count
 * (`mov ecx,N`) and the footprint masks (`and`), which legitimately
 * depend on the event.
 */

#ifndef SAVAT_ANALYSIS_IR_SYMMETRY_HH
#define SAVAT_ANALYSIS_IR_SYMMETRY_HH

#include <string>
#include <vector>

#include "kernels/generator.hh"

namespace savat::analysis::ir {

/** Result of the A/B symmetry diff. */
struct SymmetryResult
{
    /**
     * False when either half lacks the mark / cdq / dec skeleton the
     * comparison keys on (reported as asymmetric with a structural
     * reason).
     */
    bool comparable = false;

    /** One structural difference outside the event slot. */
    struct Mismatch
    {
        /** Absolute instruction indices; kNoInst when absent. */
        std::size_t instA = kNoInst;
        std::size_t instB = kNoInst;
        std::string why;
    };
    static constexpr std::size_t kNoInst = SIZE_MAX;

    std::vector<Mismatch> mismatches;

    /** The excluded event-slot windows (absolute index ranges). */
    kernels::KernelRegion slotA;
    kernels::KernelRegion slotB;

    bool symmetric() const { return comparable && mismatches.empty(); }
};

/** Diff the two halves of an alternation kernel. */
SymmetryResult checkSymmetry(const kernels::AlternationKernel &kernel);

} // namespace savat::analysis::ir

#endif // SAVAT_ANALYSIS_IR_SYMMETRY_HH
