#include "analysis/ir/symmetry.hh"

#include "support/strings.hh"

namespace savat::analysis::ir {

using isa::Opcode;
using isa::Operand;
using isa::Reg;
using kernels::KernelRegion;

namespace {

/** ptr1<->ptr2 renaming; every other register maps to itself. */
Reg
mapReg(Reg r)
{
    if (r == Reg::Esi)
        return Reg::Edi;
    if (r == Reg::Edi)
        return Reg::Esi;
    return r;
}

/** The skeleton anchors of one half. */
struct HalfShape
{
    bool ok = false;
    std::size_t afterMark = 0; //!< first instruction after the mark
    std::size_t cdq = 0;       //!< the dividend sanitizer
    std::size_t dec = 0;       //!< the loop step after the slot
    KernelRegion region;
};

HalfShape
shapeOf(const isa::Program &prog, const KernelRegion &region)
{
    HalfShape s;
    s.region = region;
    if (region.empty() ||
        prog.at(region.begin).op != Opcode::Mark) {
        return s;
    }
    s.afterMark = region.begin + 1;
    std::size_t i = s.afterMark;
    while (i < region.end && prog.at(i).op != Opcode::Cdq)
        ++i;
    if (i >= region.end)
        return s;
    s.cdq = i;
    while (i < region.end && prog.at(i).op != Opcode::Dec)
        ++i;
    if (i >= region.end)
        return s;
    s.dec = i;
    s.ok = true;
    return s;
}

/**
 * True when the immediate of this instruction is a kernel parameter
 * (burst count or footprint mask) that may legitimately differ
 * between the halves.
 */
bool
parameterizedImm(const isa::Instruction &inst)
{
    if (inst.op == Opcode::And)
        return true; // footprint masks
    return inst.op == Opcode::Mov && inst.dst.isReg() &&
           inst.dst.reg == Reg::Ecx; // burst count
}

/** Operand equality under the esi<->edi renaming. */
bool
operandsMatch(const Operand &a, const Operand &b, bool allowImmDiff)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Operand::Kind::None:
        return true;
      case Operand::Kind::Reg:
      case Operand::Kind::Mem:
        return mapReg(a.reg) == b.reg;
      case Operand::Kind::Imm:
        return allowImmDiff || a.imm == b.imm;
      default:
        return false;
    }
}

void
comparePairwise(const isa::Program &prog, std::size_t beginA,
                std::size_t beginB, std::size_t count,
                const KernelRegion &regionA,
                const KernelRegion &regionB, SymmetryResult &res)
{
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t ia = beginA + k, ib = beginB + k;
        const auto &a = prog.at(ia);
        const auto &b = prog.at(ib);
        if (a.op != b.op) {
            res.mismatches.push_back(
                {ia, ib,
                 format("opcode differs: %s vs %s",
                        isa::opcodeName(a.op),
                        isa::opcodeName(b.op))});
            continue;
        }
        const bool allowImm = parameterizedImm(a);
        if (!operandsMatch(a.dst, b.dst, allowImm) ||
            !operandsMatch(a.src, b.src, allowImm)) {
            res.mismatches.push_back(
                {ia, ib,
                 format("operands differ under esi<->edi: '%s' vs "
                        "'%s'",
                        a.toString().c_str(),
                        b.toString().c_str())});
            continue;
        }
        if (a.isBranch()) {
            // Each half's control flow must stay inside that half;
            // relative targets can differ because slot widths do.
            const bool aIn =
                a.target >= 0 &&
                regionA.contains(static_cast<std::size_t>(a.target));
            const bool bIn =
                b.target >= 0 &&
                regionB.contains(static_cast<std::size_t>(b.target));
            if (!aIn || !bIn) {
                res.mismatches.push_back(
                    {ia, ib,
                     "branch outside the half it belongs to"});
            }
        }
    }
}

} // namespace

SymmetryResult
checkSymmetry(const kernels::AlternationKernel &kernel)
{
    SymmetryResult res;
    const auto &prog = kernel.program;

    const HalfShape a = shapeOf(prog, kernel.halfA);
    const HalfShape b = shapeOf(prog, kernel.halfB);
    if (!a.ok || !b.ok) {
        res.mismatches.push_back(
            {SymmetryResult::kNoInst, SymmetryResult::kNoInst,
             format("%s half lacks the mark/cdq/dec skeleton",
                    !a.ok ? "A" : "B")});
        return res;
    }
    res.comparable = true;
    res.slotA = {a.cdq + 1, a.dec};
    res.slotB = {b.cdq + 1, b.dec};

    // Setup + pointer update: after the mark through the cdq.
    const std::size_t headA = a.cdq + 1 - a.afterMark;
    const std::size_t headB = b.cdq + 1 - b.afterMark;
    if (headA != headB) {
        res.mismatches.push_back(
            {a.afterMark, b.afterMark,
             format("setup length differs: %zu vs %zu "
                    "instruction(s) before cdq",
                    headA, headB)});
    } else {
        comparePairwise(prog, a.afterMark, b.afterMark, headA,
                        kernel.halfA, kernel.halfB, res);
    }

    // Loop control tail: the dec onward, minus the B half's closing
    // jmp back to the top of the alternation.
    std::size_t endA = a.region.end, endB = b.region.end;
    while (endA > a.dec && prog.at(endA - 1).op == Opcode::Jmp)
        --endA;
    while (endB > b.dec && prog.at(endB - 1).op == Opcode::Jmp)
        --endB;
    const std::size_t tailA = endA - a.dec, tailB = endB - b.dec;
    if (tailA != tailB) {
        res.mismatches.push_back(
            {a.dec, b.dec,
             format("loop-control tail length differs: %zu vs %zu "
                    "instruction(s)",
                    tailA, tailB)});
    } else {
        comparePairwise(prog, a.dec, b.dec, tailA, kernel.halfA,
                        kernel.halfB, res);
    }
    return res;
}

} // namespace savat::analysis::ir
