/**
 * @file
 * IR lowering for the dataflow analyzer.
 *
 * The analyzer (analysis/ir/analyzer.hh) reasons about measurement
 * kernels as dataflow, not as a flat instruction list. This header
 * lowers an isa::Program into that view: per-instruction register
 * def/use sets (as bitmasks over the eight architectural registers),
 * flag effects, and memory-access shape. The lowering is purely
 * syntactic — it adds no interpretation — so every later pass (CFG,
 * liveness, interval propagation, symmetry) shares one description
 * of what each instruction reads and writes.
 */

#ifndef SAVAT_ANALYSIS_IR_IR_HH
#define SAVAT_ANALYSIS_IR_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace savat::analysis::ir {

/** A set of architectural registers as a bitmask. */
using RegSet = std::uint8_t;

static_assert(isa::kNumRegs <= 8, "RegSet is an 8-bit mask");

/** Singleton set. */
constexpr RegSet
regBit(isa::Reg r)
{
    return static_cast<RegSet>(1u << static_cast<unsigned>(r));
}

/** Membership test. */
constexpr bool
regIn(RegSet set, isa::Reg r)
{
    return (set & regBit(r)) != 0;
}

/** Render a register set ("{eax, edx}"). */
std::string regSetToString(RegSet set);

/** How an instruction touches memory. */
enum class MemAccess : std::uint8_t {
    None,
    Load,  //!< reads through [reg]
    Store, //!< writes through [reg]
};

/** One lowered instruction: the isa view plus dataflow facts. */
struct IrInst
{
    /** The original instruction (operands, branch target). */
    isa::Instruction inst;

    /** 1-based source line in the kernel's assembly text; 0 unknown. */
    std::size_t line = 0;

    RegSet defs = 0; //!< registers written
    RegSet uses = 0; //!< registers read

    /** True when the instruction writes the ZF-bearing flags. */
    bool setsFlags = false;

    /** True when a conditional branch reads the flags. */
    bool readsFlags = false;

    MemAccess mem = MemAccess::None;

    /** Base register of the [reg] operand (valid when mem != None). */
    isa::Reg memBase = isa::Reg::Eax;

    /** Bytes accessed per memory operation (the modeled word size). */
    static constexpr std::uint64_t kAccessBytes = 4;
};

/** A lowered program. */
struct IrProgram
{
    std::string name;
    std::vector<IrInst> insts;

    std::size_t size() const { return insts.size(); }
};

/** Lower a program. The program is not retained. */
IrProgram lower(const isa::Program &program);

} // namespace savat::analysis::ir

#endif // SAVAT_ANALYSIS_IR_IR_HH
