/**
 * @file
 * Control-flow graph over a lowered kernel: basic blocks, immediate
 * dominators and natural-loop detection.
 *
 * Blocks are maximal straight-line runs; edges come from the
 * branch/fallthrough structure of the modeled x86 subset (hlt has no
 * successors, everything else falls through unless it is an
 * unconditional jmp). Dominators are computed with the classic
 * iterative algorithm; natural loops from backedges tail->head where
 * head dominates tail. A backedge whose head does NOT dominate its
 * tail marks irreducible control flow (a multi-entry loop), which
 * the analyzer reports as SAV-D004 because no trip-count or
 * termination statement can be made about such a loop.
 */

#ifndef SAVAT_ANALYSIS_IR_CFG_HH
#define SAVAT_ANALYSIS_IR_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ir/ir.hh"

namespace savat::analysis::ir {

/** One basic block: instructions [begin, end). */
struct BasicBlock
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::vector<std::size_t> succs; //!< successor block ids
    std::vector<std::size_t> preds; //!< predecessor block ids

    /** Immediate dominator block id; kNone for entry/unreachable. */
    std::size_t idom = SIZE_MAX;

    bool reachable = false;

    std::size_t size() const { return end - begin; }
};

/** One natural loop. */
struct NaturalLoop
{
    std::size_t header = 0;           //!< header block id
    std::vector<std::size_t> blocks;  //!< member block ids (sorted)
    /** Instruction indices of the backedge branches into the header. */
    std::vector<std::size_t> backedges;
    /**
     * Block ids inside the loop with an edge leaving it. Empty means
     * the loop has no exit at all (structurally infinite).
     */
    std::vector<std::size_t> exits;
    /** Loop nesting depth (1 = outermost). */
    std::size_t depth = 1;
};

/** The control-flow graph. */
struct Cfg
{
    static constexpr std::size_t kNone = SIZE_MAX;

    std::vector<BasicBlock> blocks;
    /** Block id containing each instruction. */
    std::vector<std::size_t> blockOf;
    /** Natural loops, outermost first. */
    std::vector<NaturalLoop> loops;
    /** True when a retreating edge's head fails to dominate its tail. */
    bool irreducible = false;

    /** a dominates b (reflexive). */
    bool dominates(std::size_t a, std::size_t b) const;

    /** Innermost loop containing the block; kNone when outside. */
    std::size_t innermostLoopOf(std::size_t block) const;

    /** Human-readable dump (for savat_lint --dump-cfg). */
    std::string dump(const IrProgram &prog) const;
};

/** Build the CFG for a lowered program. */
Cfg buildCfg(const IrProgram &prog);

} // namespace savat::analysis::ir

#endif // SAVAT_ANALYSIS_IR_CFG_HH
