#include "analysis/ir/ir.hh"

#include <sstream>

namespace savat::analysis::ir {

using isa::Opcode;
using isa::Operand;
using isa::Reg;

std::string
regSetToString(RegSet set)
{
    std::ostringstream oss;
    oss << '{';
    bool first = true;
    for (std::size_t i = 0; i < isa::kNumRegs; ++i) {
        const auto r = static_cast<Reg>(i);
        if (!regIn(set, r))
            continue;
        if (!first)
            oss << ", ";
        oss << isa::regName(r);
        first = false;
    }
    oss << '}';
    return oss.str();
}

namespace {

/** Registers an operand reads when used as a source. */
RegSet
operandUses(const Operand &op)
{
    if (op.isReg() || op.isMem())
        return regBit(op.reg);
    return 0;
}

void
lowerOne(IrInst &out)
{
    const auto &inst = out.inst;
    const auto &dst = inst.dst;
    const auto &src = inst.src;

    // Memory shape first: only mov touches memory in the subset.
    if (inst.isLoad()) {
        out.mem = MemAccess::Load;
        out.memBase = src.reg;
    } else if (inst.isStore()) {
        out.mem = MemAccess::Store;
        out.memBase = dst.reg;
    }

    switch (inst.op) {
      case Opcode::Mov:
        out.uses = operandUses(src);
        if (dst.isMem())
            out.uses |= regBit(dst.reg); // address computation
        else if (dst.isReg())
            out.defs = regBit(dst.reg);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Imul:
        if (dst.isReg()) {
            out.defs = regBit(dst.reg);
            out.uses = regBit(dst.reg) | operandUses(src);
        }
        out.setsFlags = inst.op != Opcode::Imul;
        break;
      case Opcode::Idiv:
        // edx:eax / dst.reg -> eax, remainder -> edx.
        out.defs = regBit(Reg::Eax) | regBit(Reg::Edx);
        out.uses = regBit(Reg::Eax) | regBit(Reg::Edx);
        if (dst.isReg())
            out.uses |= regBit(dst.reg);
        break;
      case Opcode::Cdq:
        out.defs = regBit(Reg::Edx);
        out.uses = regBit(Reg::Eax);
        break;
      case Opcode::Inc:
      case Opcode::Dec:
        if (dst.isReg()) {
            out.defs = regBit(dst.reg);
            out.uses = regBit(dst.reg);
        }
        out.setsFlags = true;
        break;
      case Opcode::Cmp:
      case Opcode::Test:
        out.uses = operandUses(dst) | operandUses(src);
        out.setsFlags = true;
        break;
      case Opcode::Je:
      case Opcode::Jne:
      case Opcode::Jae:
      case Opcode::Jb:
        out.readsFlags = true;
        break;
      case Opcode::Jmp:
      case Opcode::Lfence:
      case Opcode::Nop:
      case Opcode::Hlt:
      case Opcode::Mark:
        break;
      default:
        break;
    }
}

} // namespace

IrProgram
lower(const isa::Program &program)
{
    IrProgram out;
    out.name = program.name();
    out.insts.resize(program.size());
    for (std::size_t i = 0; i < program.size(); ++i) {
        out.insts[i].inst = program.at(i);
        out.insts[i].line = program.sourceLine(i);
        lowerOne(out.insts[i]);
    }
    return out;
}

} // namespace savat::analysis::ir
