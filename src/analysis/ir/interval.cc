#include "analysis/ir/interval.hh"

#include <algorithm>
#include <optional>
#include <sstream>

#include "support/strings.hh"

namespace savat::analysis::ir {

using isa::Opcode;
using isa::Operand;
using isa::Reg;

std::string
Interval::toString() const
{
    if (bottom)
        return "(bottom)";
    if (isConst())
        return format("0x%08x", lo);
    return format("[0x%08x, 0x%08x]", lo, hi);
}

Interval
hull(const Interval &a, const Interval &b)
{
    if (a.bottom)
        return b;
    if (b.bottom)
        return a;
    return {std::min(a.lo, b.lo), std::max(a.hi, b.hi), false};
}

namespace {

constexpr std::uint64_t kWrap = 1ull << 32;

/* Hacker's Delight 4-3: tight unsigned bounds of x|y for
 * x in [a,b], y in [c,d]. */
std::uint32_t
minOr(std::uint32_t a, std::uint32_t b, std::uint32_t c,
      std::uint32_t d)
{
    std::uint32_t m = 0x80000000u;
    while (m != 0) {
        if (~a & c & m) {
            const std::uint32_t t = (a | m) & (0u - m);
            if (t <= b) {
                a = t;
                break;
            }
        } else if (a & ~c & m) {
            const std::uint32_t t = (c | m) & (0u - m);
            if (t <= d) {
                c = t;
                break;
            }
        }
        m >>= 1;
    }
    return a | c;
}

std::uint32_t
maxOr(std::uint32_t a, std::uint32_t b, std::uint32_t c,
      std::uint32_t d)
{
    std::uint32_t m = 0x80000000u;
    while (m != 0) {
        if (b & d & m) {
            std::uint32_t t = (b - m) | (m - 1);
            if (t >= a) {
                b = t;
                break;
            }
            t = (d - m) | (m - 1);
            if (t >= c) {
                d = t;
                break;
            }
        }
        m >>= 1;
    }
    return b | d;
}

} // namespace

Interval
intervalOr(const Interval &a, const Interval &b)
{
    if (a.bottom || b.bottom)
        return Interval::none();
    return {minOr(a.lo, a.hi, b.lo, b.hi),
            maxOr(a.lo, a.hi, b.lo, b.hi), false};
}

Interval
intervalAnd(const Interval &a, const Interval &b)
{
    if (a.bottom || b.bottom)
        return Interval::none();
    // De Morgan on the OR bounds.
    return {~maxOr(~a.hi, ~a.lo, ~b.hi, ~b.lo),
            ~minOr(~a.hi, ~a.lo, ~b.hi, ~b.lo), false};
}

namespace {

Interval
intervalAdd(const Interval &a, const Interval &b)
{
    if (a.bottom || b.bottom)
        return Interval::none();
    const std::uint64_t lo = std::uint64_t{a.lo} + b.lo;
    const std::uint64_t hi = std::uint64_t{a.hi} + b.hi;
    if (hi < kWrap)
        return {static_cast<std::uint32_t>(lo),
                static_cast<std::uint32_t>(hi), false};
    if (lo >= kWrap) // the whole interval wraps coherently
        return {static_cast<std::uint32_t>(lo & 0xFFFFFFFFu),
                static_cast<std::uint32_t>(hi & 0xFFFFFFFFu), false};
    return Interval::top();
}

Interval
intervalSub(const Interval &a, const Interval &b)
{
    if (a.bottom || b.bottom)
        return Interval::none();
    const std::int64_t lo = std::int64_t{a.lo} - b.hi;
    const std::int64_t hi = std::int64_t{a.hi} - b.lo;
    if (lo >= 0)
        return {static_cast<std::uint32_t>(lo),
                static_cast<std::uint32_t>(hi), false};
    if (hi < 0) // the whole interval wraps coherently
        return {static_cast<std::uint32_t>(lo + kWrap),
                static_cast<std::uint32_t>(hi + kWrap), false};
    return Interval::top();
}

Interval
intervalXor(const Interval &a, const Interval &b)
{
    if (a.bottom || b.bottom)
        return Interval::none();
    if (a.isConst() && b.isConst())
        return Interval::constant(a.lo ^ b.lo);
    // Sound upper bound: x^y <= x|y.
    return {0, maxOr(a.lo, a.hi, b.lo, b.hi), false};
}

/** Three-valued zero flag plus the refinement it licenses. */
struct FlagState
{
    enum class Tri : std::uint8_t { Unknown, Set, Clear };
    enum class Kind : std::uint8_t {
        None,
        RegZero,    //!< ZF <=> reg == 0
        RegEqConst  //!< ZF <=> reg == imm
    };

    Tri zf = Tri::Unknown;
    Kind kind = Kind::None;
    Reg reg = Reg::Eax;
    std::uint32_t imm = 0;

    bool operator==(const FlagState &) const = default;
};

FlagState::Tri
zfOf(const Interval &result)
{
    if (result.bottom)
        return FlagState::Tri::Unknown;
    if (result.isConst())
        return result.lo == 0 ? FlagState::Tri::Set
                              : FlagState::Tri::Clear;
    return result.contains(0) ? FlagState::Tri::Unknown
                              : FlagState::Tri::Clear;
}

/** Full abstract state at a program point. */
struct State
{
    std::array<Interval, isa::kNumRegs> regs;
    FlagState flags;

    bool operator==(const State &) const = default;

    Interval &reg(Reg r)
    {
        return regs[static_cast<std::size_t>(r)];
    }
    const Interval &reg(Reg r) const
    {
        return regs[static_cast<std::size_t>(r)];
    }
};

Interval
evalSrc(const State &st, const Operand &op)
{
    if (op.isImm())
        return Interval::constant(
            static_cast<std::uint32_t>(op.imm & 0xFFFFFFFF));
    if (op.isReg())
        return st.reg(op.reg);
    return Interval::top(); // memory load
}

/** Apply one instruction to the state. */
void
transferInst(const IrInst &ii, State &st)
{
    const auto &inst = ii.inst;
    auto &fs = st.flags;

    // A def of the register the flag refinement talks about (without
    // new flags) keeps the tri-state but loses the refinement.
    if (!ii.setsFlags && fs.kind != FlagState::Kind::None &&
        regIn(ii.defs, fs.reg)) {
        fs.kind = FlagState::Kind::None;
    }

    switch (inst.op) {
      case Opcode::Mov:
        if (inst.dst.isReg())
            st.reg(inst.dst.reg) = evalSrc(st, inst.src);
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor: {
        if (!inst.dst.isReg())
            break;
        const Reg d = inst.dst.reg;
        const Interval rhs = evalSrc(st, inst.src);
        Interval r;
        switch (inst.op) {
          case Opcode::Add: r = intervalAdd(st.reg(d), rhs); break;
          case Opcode::Sub: r = intervalSub(st.reg(d), rhs); break;
          case Opcode::And: r = intervalAnd(st.reg(d), rhs); break;
          case Opcode::Or: r = intervalOr(st.reg(d), rhs); break;
          default: // Xor
            r = inst.src.isReg() && inst.src.reg == d
                    ? Interval::constant(0)
                    : intervalXor(st.reg(d), rhs);
            break;
        }
        st.reg(d) = r;
        fs = {zfOf(r), FlagState::Kind::RegZero, d, 0};
        break;
      }
      case Opcode::Imul:
        if (inst.dst.isReg()) {
            const Interval rhs = evalSrc(st, inst.src);
            const Interval &lhs = st.reg(inst.dst.reg);
            st.reg(inst.dst.reg) =
                lhs.isConst() && rhs.isConst()
                    ? Interval::constant(static_cast<std::uint32_t>(
                          (std::uint64_t{lhs.lo} * rhs.lo) &
                          0xFFFFFFFFu))
                    : Interval::top();
        }
        fs = {}; // flags architecturally undefined after imul
        break;
      case Opcode::Idiv:
        st.reg(Reg::Eax) = Interval::top();
        st.reg(Reg::Edx) = Interval::top();
        fs = {}; // flags architecturally undefined after idiv
        break;
      case Opcode::Cdq: {
        const Interval &eax = st.reg(Reg::Eax);
        if (eax.bottom)
            st.reg(Reg::Edx) = Interval::none();
        else if (eax.hi < 0x80000000u)
            st.reg(Reg::Edx) = Interval::constant(0);
        else if (eax.lo >= 0x80000000u)
            st.reg(Reg::Edx) = Interval::constant(0xFFFFFFFFu);
        else
            st.reg(Reg::Edx) = Interval::top();
        break;
      }
      case Opcode::Inc:
      case Opcode::Dec:
        if (inst.dst.isReg()) {
            const Reg d = inst.dst.reg;
            const Interval one = Interval::constant(1);
            const Interval r = inst.op == Opcode::Inc
                                   ? intervalAdd(st.reg(d), one)
                                   : intervalSub(st.reg(d), one);
            st.reg(d) = r;
            fs = {zfOf(r), FlagState::Kind::RegZero, d, 0};
        }
        break;
      case Opcode::Cmp: {
        const Interval lhs = evalSrc(st, inst.dst);
        const Interval rhs = evalSrc(st, inst.src);
        FlagState nf;
        if (inst.dst.isReg() && inst.src.isReg() &&
            inst.dst.reg == inst.src.reg) {
            nf.zf = FlagState::Tri::Set;
        } else if (!lhs.bottom && !rhs.bottom) {
            if (lhs.isConst() && rhs.isConst()) {
                nf.zf = lhs.lo == rhs.lo ? FlagState::Tri::Set
                                         : FlagState::Tri::Clear;
            } else if (lhs.hi < rhs.lo || rhs.hi < lhs.lo) {
                nf.zf = FlagState::Tri::Clear;
            }
        }
        if (inst.dst.isReg() && inst.src.isImm()) {
            nf.kind = FlagState::Kind::RegEqConst;
            nf.reg = inst.dst.reg;
            nf.imm =
                static_cast<std::uint32_t>(inst.src.imm & 0xFFFFFFFF);
        }
        fs = nf;
        break;
      }
      case Opcode::Test: {
        FlagState nf;
        if (inst.dst.isReg() && inst.src.isReg() &&
            inst.dst.reg == inst.src.reg) {
            nf.zf = zfOf(st.reg(inst.dst.reg));
            nf.kind = FlagState::Kind::RegZero;
            nf.reg = inst.dst.reg;
        } else {
            nf.zf = zfOf(
                intervalAnd(evalSrc(st, inst.dst),
                            evalSrc(st, inst.src)));
        }
        fs = nf;
        break;
      }
      case Opcode::Je:
      case Opcode::Jne:
      case Opcode::Jmp:
      case Opcode::Nop:
      case Opcode::Hlt:
      case Opcode::Mark:
      default:
        break;
    }
}

/** Refine the interval to == c; nullopt when infeasible. */
std::optional<Interval>
refineEq(const Interval &i, std::uint32_t c)
{
    if (!i.contains(c))
        return std::nullopt;
    return Interval::constant(c);
}

/** Refine the interval to != c; nullopt when infeasible. */
std::optional<Interval>
refineNe(const Interval &i, std::uint32_t c)
{
    if (i.bottom)
        return i;
    if (i.isConst() && i.lo == c)
        return std::nullopt;
    Interval r = i;
    if (r.lo == c)
        ++r.lo;
    else if (r.hi == c)
        --r.hi;
    return r;
}

/**
 * State flowing along one CFG edge out of a block ending in `last`.
 * nullopt when the edge is provably infeasible.
 */
std::optional<State>
refineEdge(const State &out, const IrInst &last, bool conditional,
           bool taken)
{
    if (!conditional)
        return out;
    // je taken needs ZF set; jne taken needs ZF clear.
    const bool wantSet = (last.inst.op == Opcode::Je) == taken;
    const auto &fs = out.flags;
    if (fs.zf != FlagState::Tri::Unknown &&
        (fs.zf == FlagState::Tri::Set) != wantSet) {
        return std::nullopt;
    }
    State res = out;
    if (fs.kind != FlagState::Kind::None) {
        const std::uint32_t c =
            fs.kind == FlagState::Kind::RegZero ? 0 : fs.imm;
        const auto refined = wantSet ? refineEq(res.reg(fs.reg), c)
                                     : refineNe(res.reg(fs.reg), c);
        if (!refined)
            return std::nullopt;
        res.reg(fs.reg) = *refined;
    }
    return res;
}

/** Threshold set for widening: the program's own constants. */
std::vector<std::uint32_t>
collectThresholds(const IrProgram &prog)
{
    std::vector<std::uint32_t> imms{0, 0xFFFFFFFFu};
    auto addImm = [&](const Operand &op) {
        if (op.isImm())
            imms.push_back(
                static_cast<std::uint32_t>(op.imm & 0xFFFFFFFF));
    };
    for (const auto &ii : prog.insts) {
        addImm(ii.inst.dst);
        addImm(ii.inst.src);
    }
    std::sort(imms.begin(), imms.end());
    imms.erase(std::unique(imms.begin(), imms.end()), imms.end());
    // Pairwise ORs: the masked-pointer idiom sweeps to base|mask.
    std::vector<std::uint32_t> th = imms;
    for (std::size_t i = 0; i < imms.size(); ++i) {
        for (std::size_t j = i; j < imms.size(); ++j) {
            th.push_back(imms[i] | imms[j]);
            th.push_back(imms[i] & imms[j]);
        }
    }
    std::sort(th.begin(), th.end());
    th.erase(std::unique(th.begin(), th.end()), th.end());
    return th;
}

std::uint32_t
widenDown(const std::vector<std::uint32_t> &th, std::uint32_t v)
{
    // Largest threshold <= v (0 is always present).
    auto it = std::upper_bound(th.begin(), th.end(), v);
    return *std::prev(it);
}

std::uint32_t
widenUp(const std::vector<std::uint32_t> &th, std::uint32_t v)
{
    // Smallest threshold >= v (0xFFFFFFFF is always present).
    return *std::lower_bound(th.begin(), th.end(), v);
}

/** Join `from` into `into`; returns true when `into` changed. */
bool
joinInto(State &into, const State &from)
{
    bool changed = false;
    for (std::size_t r = 0; r < isa::kNumRegs; ++r) {
        const Interval h = hull(into.regs[r], from.regs[r]);
        if (!(h == into.regs[r])) {
            into.regs[r] = h;
            changed = true;
        }
    }
    if (!(into.flags == from.flags)) {
        const FlagState unknown;
        if (!(into.flags == unknown)) {
            into.flags = unknown;
            changed = true;
        }
    }
    return changed;
}

/** 2-adic inverse of an odd 32-bit value (Newton iteration). */
std::uint32_t
oddInverse(std::uint32_t s)
{
    std::uint32_t inv = s; // correct to 3 bits already
    for (int i = 0; i < 5; ++i)
        inv *= 2u - s * inv;
    return inv;
}

} // namespace

IntervalResult
analyzeIntervals(const IrProgram &prog, const Cfg &cfg)
{
    IntervalResult res;
    const std::size_t nb = cfg.blocks.size();
    res.loops.assign(cfg.loops.size(), {});
    if (nb == 0)
        return res;

    const auto thresholds = collectThresholds(prog);

    std::vector<State> in(nb);
    std::vector<bool> seen(nb, false);
    std::vector<std::size_t> visits(nb, 0);

    // Entry: everything unknown (liveness reports uninitialized
    // reads separately; Top is the sound value domain answer).
    in[0] = State{};
    seen[0] = true;

    auto succEdges = [&](std::size_t b, const State &out) {
        // Pairs of (succ block, refined state or nullopt).
        std::vector<std::pair<std::size_t, std::optional<State>>> es;
        const auto &bb = cfg.blocks[b];
        const auto &last = prog.insts[bb.end - 1];
        const bool conditional = last.inst.op == Opcode::Je ||
                                 last.inst.op == Opcode::Jne;
        const bool hasTaken =
            last.inst.isBranch() && last.inst.target >= 0 &&
            static_cast<std::size_t>(last.inst.target) < prog.size();
        for (std::size_t k = 0; k < bb.succs.size(); ++k) {
            const bool taken = hasTaken && k == 0;
            es.emplace_back(
                bb.succs[k],
                refineEdge(out, last, conditional, taken));
        }
        return es;
    };

    auto transferBlock = [&](std::size_t b, State st) {
        for (std::size_t i = cfg.blocks[b].begin;
             i < cfg.blocks[b].end; ++i) {
            transferInst(prog.insts[i], st);
        }
        return st;
    };

    // Widened worklist fixpoint.
    constexpr std::size_t kWidenDelay = 4;
    std::vector<std::size_t> work{0};
    std::vector<bool> queued(nb, false);
    queued[0] = true;
    const std::size_t maxSteps = 256 * nb + 4096;
    std::size_t steps = 0;
    while (!work.empty()) {
        if (++steps > maxSteps) {
            res.converged = false;
            break;
        }
        const std::size_t b = work.back();
        work.pop_back();
        queued[b] = false;
        ++visits[b];
        const State out = transferBlock(b, in[b]);
        for (const auto &[s, refined] : succEdges(b, out)) {
            if (!refined)
                continue;
            bool changed;
            if (!seen[s]) {
                in[s] = *refined;
                seen[s] = true;
                changed = true;
            } else {
                changed = joinInto(in[s], *refined);
                if (changed && visits[s] > kWidenDelay) {
                    for (auto &iv : in[s].regs) {
                        if (iv.bottom)
                            continue;
                        iv.lo = widenDown(thresholds, iv.lo);
                        iv.hi = widenUp(thresholds, iv.hi);
                    }
                }
            }
            if (changed && !queued[s]) {
                work.push_back(s);
                queued[s] = true;
            }
        }
    }

    // RPO for the narrowing sweeps (blocks are laid out in program
    // order and the CFG is built from a flat program, so index order
    // is a serviceable iteration order here).
    if (res.converged) {
        for (int sweep = 0; sweep < 3; ++sweep) {
            for (std::size_t b = 0; b < nb; ++b) {
                if (!seen[b])
                    continue;
                State next;
                bool any = b == 0; // entry keeps its boundary state
                if (b == 0)
                    next = State{};
                for (const std::size_t p : cfg.blocks[b].preds) {
                    if (!seen[p])
                        continue;
                    const State out = transferBlock(p, in[p]);
                    for (const auto &[s, refined] :
                         succEdges(p, out)) {
                        if (s != b || !refined)
                            continue;
                        if (!any) {
                            next = *refined;
                            any = true;
                        } else {
                            joinInto(next, *refined);
                        }
                    }
                }
                if (any)
                    in[b] = next;
            }
        }
    }

    // Final collection pass: per-instruction address intervals and
    // per-edge feasibility.
    std::vector<std::vector<bool>> edgeFeasible(nb);
    std::vector<State> outs(nb);
    for (std::size_t b = 0; b < nb; ++b) {
        edgeFeasible[b].assign(cfg.blocks[b].succs.size(), false);
        if (!seen[b])
            continue;
        State st = in[b];
        for (std::size_t i = cfg.blocks[b].begin;
             i < cfg.blocks[b].end; ++i) {
            const auto &ii = prog.insts[i];
            if (ii.mem != MemAccess::None) {
                res.mems.push_back(
                    {i, ii.memBase, ii.mem,
                     res.converged ? st.reg(ii.memBase)
                                   : Interval::top()});
            }
            transferInst(ii, st);
        }
        outs[b] = st;
        std::size_t k = 0;
        for (const auto &[s, refined] : succEdges(b, st)) {
            (void)s;
            edgeFeasible[b][k++] = refined.has_value();
        }
    }
    std::sort(res.mems.begin(), res.mems.end(),
              [](const MemFact &a, const MemFact &b) {
                  return a.inst < b.inst;
              });

    // Loop facts.
    for (std::size_t li = 0; li < cfg.loops.size(); ++li) {
        const auto &loop = cfg.loops[li];
        auto &lf = res.loops[li];
        if (!seen[loop.header] || !res.converged)
            continue;

        const auto inLoop = [&](std::size_t b) {
            return std::binary_search(loop.blocks.begin(),
                                      loop.blocks.end(), b);
        };

        if (loop.exits.empty()) {
            lf.verdict = LoopFacts::Termination::Infinite;
            continue;
        }
        bool anyFeasibleExit = false;
        for (const std::size_t b : loop.exits) {
            for (std::size_t k = 0; k < cfg.blocks[b].succs.size();
                 ++k) {
                if (!inLoop(cfg.blocks[b].succs[k]) && seen[b] &&
                    edgeFeasible[b][k]) {
                    anyFeasibleExit = true;
                }
            }
        }
        if (!anyFeasibleExit) {
            lf.verdict = LoopFacts::Termination::Infinite;
            continue;
        }

        // Counted idiom: a single jne backedge whose flags come from
        // the only in-loop step (dec r / sub r,imm) of a counter
        // that enters the loop as a constant, and no other way out.
        if (loop.backedges.size() != 1)
            continue;
        const std::size_t bi = loop.backedges[0];
        if (prog.insts[bi].inst.op != Opcode::Jne)
            continue;
        const std::size_t tb = cfg.blockOf[bi];
        if (loop.exits.size() != 1 || loop.exits[0] != tb)
            continue;

        // Find the flag source within the backedge block.
        std::size_t si = Cfg::kNone;
        for (std::size_t i = bi; i-- > cfg.blocks[tb].begin;) {
            const auto &ii = prog.insts[i];
            if (ii.setsFlags || ii.inst.op == Opcode::Imul ||
                ii.inst.op == Opcode::Idiv) {
                si = i;
                break;
            }
        }
        if (si == Cfg::kNone)
            continue;
        const auto &step = prog.insts[si].inst;
        std::uint32_t stepBy = 0;
        if (step.op == Opcode::Dec && step.dst.isReg()) {
            stepBy = 1;
        } else if (step.op == Opcode::Sub && step.dst.isReg() &&
                   step.src.isImm()) {
            stepBy = static_cast<std::uint32_t>(step.src.imm &
                                                0xFFFFFFFF);
        }
        if (stepBy == 0)
            continue;
        const Reg ctr = step.dst.reg;

        // The counter must be stepped exactly once per iteration and
        // stay untouched between the step and the branch.
        std::size_t defsInLoop = 0;
        for (const std::size_t b : loop.blocks) {
            for (std::size_t i = cfg.blocks[b].begin;
                 i < cfg.blocks[b].end; ++i) {
                if (regIn(prog.insts[i].defs, ctr))
                    ++defsInLoop;
            }
        }
        if (defsInLoop != 1)
            continue;

        // Entry value: join of the loop-entry edges only.
        Interval entry = Interval::none();
        for (const std::size_t p : cfg.blocks[loop.header].preds) {
            if (inLoop(p) || !seen[p])
                continue;
            for (const auto &[s, refined] :
                 succEdges(p, outs[p])) {
                if (s == loop.header && refined)
                    entry = hull(entry, refined->reg(ctr));
            }
        }
        if (!entry.isConst())
            continue;
        const std::uint32_t n = entry.lo;

        lf.counted = true;
        lf.counter = ctr;
        lf.counterInit = n;
        lf.step = stepBy;

        // Trips = smallest k >= 1 with k*step == n (mod 2^32).
        std::uint32_t v = 0;
        while (((stepBy >> v) & 1u) == 0)
            ++v;
        if ((v > 0 && (n & ((1u << v) - 1u)) != 0)) {
            // The counter steps over zero forever.
            lf.verdict = LoopFacts::Termination::Infinite;
            continue;
        }
        const std::uint32_t modBits = 32 - v;
        const std::uint64_t modMask =
            modBits >= 32 ? 0xFFFFFFFFull : ((1ull << modBits) - 1);
        const std::uint64_t k =
            (std::uint64_t{n >> v} * oddInverse(stepBy >> v)) &
            modMask;
        lf.trips = k == 0 ? modMask + 1 : k;
        lf.verdict = LoopFacts::Termination::Terminates;
    }

    return res;
}

std::string
IntervalResult::dump(const IrProgram &prog, const Cfg &cfg) const
{
    std::ostringstream oss;
    oss << "intervals of " << prog.name << ":\n";
    if (!converged)
        oss << "  (fixpoint hit its safety cap; facts are "
               "conservative)\n";
    for (std::size_t li = 0; li < loops.size(); ++li) {
        const auto &lf = loops[li];
        oss << format("  loop%zu header=bb%zu: ", li,
                      cfg.loops[li].header);
        switch (lf.verdict) {
          case LoopFacts::Termination::Terminates:
            oss << format("terminates after %llu trip(s)",
                          static_cast<unsigned long long>(lf.trips));
            break;
          case LoopFacts::Termination::Infinite:
            oss << "proved non-terminating";
            break;
          case LoopFacts::Termination::Unknown:
            oss << "termination unknown";
            break;
        }
        if (lf.counted) {
            oss << format(" (counter %s init=%u step=%u)",
                          isa::regName(lf.counter), lf.counterInit,
                          lf.step);
        }
        oss << "\n";
    }
    for (const auto &mf : mems) {
        oss << format(
            "  %3zu: %-5s [%s] addr=%s '%s'\n", mf.inst,
            mf.access == MemAccess::Load ? "load" : "store",
            isa::regName(mf.base), mf.addr.toString().c_str(),
            prog.insts[mf.inst].inst.toString().c_str());
    }
    return oss.str();
}

} // namespace savat::analysis::ir
