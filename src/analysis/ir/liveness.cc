#include "analysis/ir/liveness.hh"

#include <sstream>

#include "support/strings.hh"

namespace savat::analysis::ir {

LivenessResult
analyzeLiveness(const IrProgram &prog, const Cfg &cfg)
{
    LivenessResult res;
    const std::size_t nb = cfg.blocks.size();
    res.liveIn.assign(nb, 0);
    res.liveOut.assign(nb, 0);
    res.initIn.assign(nb, 0);
    if (nb == 0)
        return res;

    // Per-block gen/kill for backward liveness: use-before-def.
    std::vector<RegSet> gen(nb, 0), kill(nb, 0);
    // Per-block defs for forward initialization.
    std::vector<RegSet> defs(nb, 0);
    for (std::size_t b = 0; b < nb; ++b) {
        for (std::size_t i = cfg.blocks[b].begin;
             i < cfg.blocks[b].end; ++i) {
            const auto &ii = prog.insts[i];
            gen[b] |= static_cast<RegSet>(ii.uses & ~kill[b]);
            kill[b] |= ii.defs;
            defs[b] |= ii.defs;
        }
    }

    // Backward liveness to fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = nb; b-- > 0;) {
            RegSet out = 0;
            for (const std::size_t s : cfg.blocks[b].succs)
                out |= res.liveIn[s];
            const auto in = static_cast<RegSet>(
                gen[b] | (out & ~kill[b]));
            if (out != res.liveOut[b] || in != res.liveIn[b]) {
                res.liveOut[b] = out;
                res.liveIn[b] = in;
                changed = true;
            }
        }
    }

    // Forward definite-initialization (intersection at joins) over
    // the reachable blocks. Entry starts with nothing initialized.
    constexpr RegSet kAll = 0xFF;
    std::vector<RegSet> initOut(nb, kAll);
    res.initIn.assign(nb, kAll);
    res.initIn[0] = 0;
    initOut[0] = defs[0];
    changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < nb; ++b) {
            if (!cfg.blocks[b].reachable)
                continue;
            RegSet in = b == 0 ? 0 : kAll;
            for (const std::size_t p : cfg.blocks[b].preds) {
                if (cfg.blocks[p].reachable)
                    in &= initOut[p];
            }
            if (cfg.blocks[b].preds.empty() && b != 0)
                in = 0;
            const auto out = static_cast<RegSet>(in | defs[b]);
            if (in != res.initIn[b] || out != initOut[b]) {
                res.initIn[b] = in;
                initOut[b] = out;
                changed = true;
            }
        }
    }

    // Walk each reachable block once more for the per-instruction
    // findings.
    for (std::size_t b = 0; b < nb; ++b) {
        if (!cfg.blocks[b].reachable)
            continue;

        RegSet inited = res.initIn[b];
        for (std::size_t i = cfg.blocks[b].begin;
             i < cfg.blocks[b].end; ++i) {
            const auto &ii = prog.insts[i];
            const auto bad = static_cast<RegSet>(ii.uses & ~inited);
            if (bad != 0)
                res.uninitReads.push_back({i, bad});
            inited |= ii.defs;
        }

        // Dead stores: backward within the block, seeded from
        // live-out; only flagged inside loops (the measured burst).
        if (cfg.innermostLoopOf(b) == Cfg::kNone)
            continue;
        RegSet live = res.liveOut[b];
        for (std::size_t i = cfg.blocks[b].end;
             i-- > cfg.blocks[b].begin;) {
            const auto &ii = prog.insts[i];
            if (ii.defs != 0 && (ii.defs & live) == 0 &&
                ii.mem == MemAccess::None &&
                ii.inst.op != isa::Opcode::Cdq) {
                res.deadStores.push_back(i);
            }
            live = static_cast<RegSet>((live & ~ii.defs) | ii.uses);
        }
    }
    return res;
}

std::string
LivenessResult::dump(const IrProgram &prog, const Cfg &cfg) const
{
    std::ostringstream oss;
    oss << "liveness of " << prog.name << ":\n";
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        oss << format(
            "  bb%zu live-in=%s live-out=%s init-in=%s\n", b,
            regSetToString(liveIn[b]).c_str(),
            regSetToString(liveOut[b]).c_str(),
            regSetToString(initIn[b]).c_str());
    }
    for (const auto &ur : uninitReads) {
        oss << format("  uninitialized read at %zu '%s': %s\n",
                      ur.inst,
                      prog.insts[ur.inst].inst.toString().c_str(),
                      regSetToString(ur.regs).c_str());
    }
    for (const std::size_t i : deadStores) {
        oss << format("  dead store at %zu '%s'\n", i,
                      prog.insts[i].inst.toString().c_str());
    }
    return oss.str();
}

} // namespace savat::analysis::ir
