/**
 * @file
 * Register dataflow over the CFG: backward liveness, forward
 * definite-initialization, and the two derived findings the
 * analyzer reports — reads of never-written registers (SAV-D001)
 * and in-loop defs that no path ever reads (SAV-D002).
 *
 * Both problems are classic bitvector dataflow; with eight
 * registers a whole block state is one byte, so the fixpoints are
 * effectively free compared to building the kernel.
 */

#ifndef SAVAT_ANALYSIS_IR_LIVENESS_HH
#define SAVAT_ANALYSIS_IR_LIVENESS_HH

#include <string>
#include <vector>

#include "analysis/ir/cfg.hh"
#include "analysis/ir/ir.hh"

namespace savat::analysis::ir {

/** Result of the liveness/initialization passes. */
struct LivenessResult
{
    /** Per-block live registers at entry/exit. */
    std::vector<RegSet> liveIn;
    std::vector<RegSet> liveOut;

    /** Per-block definitely-initialized registers at entry. */
    std::vector<RegSet> initIn;

    /**
     * Instruction indices reading a register no path has written
     * (with the registers concerned). First occurrence per
     * instruction.
     */
    struct UninitRead
    {
        std::size_t inst = 0;
        RegSet regs = 0;
    };
    std::vector<UninitRead> uninitReads;

    /**
     * Instruction indices of in-loop register defs that are dead:
     * overwritten on every path before any read. cdq is exempt (its
     * edx def is the mandated cross-half dividend sanitizer).
     */
    std::vector<std::size_t> deadStores;

    /** Human-readable dump (savat_lint --dump-liveness). */
    std::string dump(const IrProgram &prog, const Cfg &cfg) const;
};

/** Run the liveness and initialization fixpoints. */
LivenessResult analyzeLiveness(const IrProgram &prog, const Cfg &cfg);

} // namespace savat::analysis::ir

#endif // SAVAT_ANALYSIS_IR_LIVENESS_HH
