/**
 * @file
 * The campaign checker: static validation of a whole campaign
 * specification before any simulation runs.
 *
 * `Checker::check` walks a CampaignSpec through every analysis pass
 * — unit audit, machine geometry, spectral configuration, per-pair
 * burst solvability, generated-kernel lint — and returns a Report
 * whose diagnostics carry the spec's source locations. Campaign and
 * Meter call the same passes from their entry points and refuse to
 * run when any error-level diagnostic fires; `savat-lint` exposes
 * the checker on the command line.
 */

#ifndef SAVAT_ANALYSIS_CHECKER_HH
#define SAVAT_ANALYSIS_CHECKER_HH

#include "analysis/checks.hh"
#include "analysis/diagnostic.hh"
#include "analysis/spec.hh"

namespace savat::analysis {

/** The static checker. */
class Checker
{
  public:
    explicit Checker(CheckerOptions options = {});

    /**
     * Run every pass over the spec. Diagnostics are annotated with
     * the spec's file and field source lines when it was parsed
     * from text.
     */
    Report check(const CampaignSpec &spec) const;

    /**
     * The meter-level subset (no event set required): machine
     * geometry, measurement values, spectral configuration. Used by
     * SavatMeter's constructor.
     */
    Report checkMeasurement(const uarch::MachineConfig &m,
                            const MeasurementSettings &s) const;

    /**
     * The pair-level subset: burst solvability and footprint
     * consistency for one (a, b) pair. Used by simulatePair.
     */
    Report checkPair(const uarch::MachineConfig &m,
                     kernels::EventKind a, kernels::EventKind b,
                     const MeasurementSettings &s) const;

    const CheckerOptions &options() const { return _options; }

  private:
    CheckerOptions _options;
};

} // namespace savat::analysis

#endif // SAVAT_ANALYSIS_CHECKER_HH
