/**
 * @file
 * Structured diagnostics for the static-analysis layer.
 *
 * Every problem the checker finds is reported as a Diagnostic: a
 * stable identifier (the `SAV-xxxx` namespace documented in
 * DESIGN.md), a severity, a human-readable message, the spec field
 * (and, for parsed spec files, the line) it refers to, and a fix-it
 * hint. Diagnostics accumulate in a Report, which Campaign/Meter
 * consult to refuse invalid work before any simulation runs.
 */

#ifndef SAVAT_ANALYSIS_DIAGNOSTIC_HH
#define SAVAT_ANALYSIS_DIAGNOSTIC_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace savat::analysis {

/** How bad a finding is. Errors block execution. */
enum class Severity : std::uint8_t {
    Note,    //!< methodological observation, never blocks
    Warning, //!< suspicious but runnable configuration
    Error    //!< the measurement cannot produce a meaningful SAVAT
};

/** Display name ("note", "warning", "error"). */
const char *severityName(Severity s);

/**
 * Stable diagnostic identifiers. The letter groups follow the
 * checker's four concerns: Burst solvability, Kernel lint, Spectral
 * configuration, Unit/value audits, plus Campaign-level checks.
 */
enum class DiagId : std::uint8_t {
    BurstUnsolvable,      //!< SAV-B001: no burst lengths reach f_alt
    BurstQuantized,       //!< SAV-B002: integer counts miss f_alt
    DutySkewed,           //!< SAV-B003: EqualCounts duty far from 50 %
    InvalidOperand,       //!< SAV-K001: operand shape outside the ISA
    KernelStructure,      //!< SAV-K002: marks/loop structure broken
    FootprintMismatch,    //!< SAV-K003: working set contradicts level
    DegeneratePair,       //!< SAV-K004: explicit A == B pair
    InvalidGeometry,      //!< SAV-K005: cache geometry unrealizable
    BandExceedsSpan,      //!< SAV-S001: band outside synthesized span
    RbwTooCoarse,         //!< SAV-S002: RBW/band mismatch
    ToneAboveNyquist,     //!< SAV-S003: tone past cycle-rate Nyquist
    DistanceOutsideModel, //!< SAV-S004: distance beyond anchors
    ToneBelowAntennaBand, //!< SAV-S005: tone under antenna corner
    NonpositiveQuantity,  //!< SAV-U001: physical quantity <= 0
    UnitMismatch,         //!< SAV-U002: wrong dimension in spec
    UnitMissing,          //!< SAV-U003: bare number in spec
    UnknownMachine,       //!< SAV-C001: machine id not registered
    RetryPolicyInvalid,   //!< SAV-1801: unusable retry policy
    RetryBackoffExcessive,//!< SAV-1802: backoff dwarfs measurement
    FaultPlanInvalid,     //!< SAV-1803: unparseable fault plan
    FaultPlanUnreachable, //!< SAV-1804: rule targets no pair
    // --- dataflow diagnostics (savat::analysis::ir) ---
    UninitializedRead,    //!< SAV-D001: read of a never-written reg
    DeadStore,            //!< SAV-D002: in-loop def never read
    UnreachableCode,      //!< SAV-D003: block unreachable from entry
    IrreducibleFlow,      //!< SAV-D004: loop with multiple entries
    // --- kernel proofs (savat::analysis::ir) ---
    TripCountMismatch,    //!< SAV-P001: derived trips != burst count
    NonTerminatingLoop,   //!< SAV-P002: inner loop cannot exit
    FootprintProofFailed, //!< SAV-P003: proved range vs claim/level
    AsymmetricHalves,     //!< SAV-P004: A/B differ outside the slot
    // --- speculation / timing-channel checks ---
    TimingWithoutSpec,    //!< SAV-1901: timing channel, no speculation
    SpecWindowExcessive,  //!< SAV-1902: speculation window too deep
    SpecOnScalarModel,    //!< SAV-1903: speculation on scalar timing
    NumIds
};

/** Number of distinct diagnostic identifiers. */
inline constexpr std::size_t kNumDiagIds =
    static_cast<std::size_t>(DiagId::NumIds);

/** Stable identifier string ("SAV-B001"). */
const char *diagIdName(DiagId id);

/** Short slug ("burst-unsolvable"). */
const char *diagIdSlug(DiagId id);

/** Built-in severity of a diagnostic kind. */
Severity diagIdSeverity(DiagId id);

/** One finding. */
struct Diagnostic
{
    DiagId id = DiagId::NumIds;
    Severity severity = Severity::Error;

    /** What is wrong, with the offending values spelled out. */
    std::string message;

    /** Spec field the finding refers to ("alternation", "pair"). */
    std::string field;

    /** How to fix it; empty when no concrete fix exists. */
    std::string hint;

    /** Source file of a parsed spec ("" for in-memory specs). */
    std::string file;

    /** 1-based line in the spec file; 0 when unknown. */
    std::size_t line = 0;

    /** "spec:12: error[SAV-S001] band-exceeds-span: ..." */
    std::string toString() const;
};

/** An ordered collection of diagnostics. */
class Report
{
  public:
    /** Record a finding with its built-in severity. */
    void add(DiagId id, std::string field, std::string message,
             std::string hint = "");

    /** Record a fully populated finding. */
    void add(Diagnostic d);

    /** Append every finding of another report. */
    void merge(const Report &other);

    const std::vector<Diagnostic> &diagnostics() const { return _diags; }

    std::size_t size() const { return _diags.size(); }
    bool empty() const { return _diags.empty(); }

    /** Findings at the given severity. */
    std::size_t count(Severity s) const;

    /** Findings with the given identifier. */
    std::size_t count(DiagId id) const;

    bool has(DiagId id) const { return count(id) > 0; }
    bool hasErrors() const { return count(Severity::Error) > 0; }

    /** Render every finding, one per line (hints indented below). */
    void render(std::ostream &os) const;
    std::string toString() const;

    /** Render only the error-severity findings. */
    std::string errorSummary() const;

  private:
    std::vector<Diagnostic> _diags;
};

} // namespace savat::analysis

#endif // SAVAT_ANALYSIS_DIAGNOSTIC_HH
