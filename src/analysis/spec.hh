/**
 * @file
 * Declarative campaign specifications.
 *
 * A CampaignSpec is the static description of a measurement campaign
 * — everything Campaign/Meter need, but as checkable data instead of
 * live objects: the target machine (optionally with geometry
 * overrides for what-if analysis), the event set or explicit pair
 * list, and the measurement settings. Specs are either built in
 * code (core converts its configs into one before running) or parsed
 * from the `savat-lint` text format:
 *
 *     # sample campaign spec
 *     campaign core2duo-baseline
 *     machine core2duo
 *     events ADD SUB LDM
 *     pair ADD LDM
 *     repetitions 10
 *     alternation 80 kHz
 *     distance 10 cm
 *     band 1 kHz
 *     span 2 kHz
 *     rbw 1 Hz
 *     periods 8
 *     pairing equal-duration
 *     channel em
 *     clock 2.4 GHz        # machine override
 *     l1 32 KiB            # machine override
 *     l2 4096 KiB          # machine override
 *
 * The parser records the source line of every field and keeps a unit
 * audit trail (bare numbers, wrong dimensions) that the checker
 * turns into SAV-U002/SAV-U003 diagnostics.
 */

#ifndef SAVAT_ANALYSIS_SPEC_HH
#define SAVAT_ANALYSIS_SPEC_HH

#include <istream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kernels/events.hh"
#include "kernels/generator.hh"
#include "support/units.hh"
#include "uarch/machine.hh"

namespace savat::analysis {

/**
 * Measurement settings mirror of core::MeterConfig, restated here so
 * the analysis layer stays below core in the link order. core
 * converts between the two; the fields match one to one, plus the
 * receiving antenna's rated band (used by the spectral checks).
 */
struct MeasurementSettings
{
    Frequency alternation = Frequency::khz(80.0);
    Distance distance = Distance::centimeters(10.0);
    kernels::PairingMode pairing = kernels::PairingMode::EqualDuration;
    std::size_t measurePeriods = 8;
    double bandHz = 1000.0;
    double spanHz = 2000.0;
    double rbwHz = 1.0;

    /** Measure the power rail instead of the EM antenna. */
    bool powerRail = false;

    /** Rated band of the loop antenna (EM channel only). */
    Frequency antennaCorner = Frequency::khz(10.0);
    Frequency antennaMax = Frequency::mhz(500.0);
};

/** One suspicious unit usage recorded during parsing. */
struct UnitAudit
{
    std::string field;     //!< spec key ("distance")
    std::string text;      //!< offending token(s) ("10 s")
    std::string expected;  //!< expected dimension ("a length")
    std::size_t line = 0;  //!< 1-based source line
    bool missing = false;  //!< bare number (else: wrong dimension)
};

/** A checkable campaign description. */
struct CampaignSpec
{
    std::string name;     //!< optional display name
    std::string file;     //!< source path ("" for in-memory specs)

    std::string machineId = "core2duo";

    /** Events to pair; empty means the paper's eleven. */
    std::vector<kernels::EventKind> events;

    /** Explicit pairs; empty means the full pairwise matrix. */
    std::vector<std::pair<kernels::EventKind, kernels::EventKind>>
        pairs;

    std::size_t repetitions = 10;

    MeasurementSettings settings;

    /** Geometry overrides applied on top of the registered machine. */
    std::optional<Frequency> clockOverride;
    std::optional<std::uint64_t> l1SizeBytes;
    std::optional<std::uint64_t> l2SizeBytes;

    /** Source line of each parsed field (absent for built specs). */
    std::map<std::string, std::size_t> fieldLines;

    /** Unit problems found while parsing. */
    std::vector<UnitAudit> unitAudits;

    /** Source line of a field; 0 when unknown. */
    std::size_t lineOf(const std::string &field) const;

    /** True when machineId names a registered case-study machine. */
    bool machineKnown() const;

    /**
     * The machine under test: the registered configuration with the
     * spec's overrides applied. Requires machineKnown().
     */
    uarch::MachineConfig machine() const;

    /** The effective event list (defaults to the paper's eleven). */
    std::vector<kernels::EventKind> effectiveEvents() const;
};

/** Outcome of parsing a spec. */
struct SpecParseResult
{
    CampaignSpec spec;
    bool ok = false;
    std::string error;       //!< first hard syntax error
    std::size_t errorLine = 0;
};

/**
 * Parse the text format described above. Unknown keys, unparsable
 * numbers and unknown event names are hard errors; unit problems are
 * recorded in the spec's audit trail for the checker.
 */
SpecParseResult parseCampaignSpec(std::istream &in,
                                  const std::string &filename = "");

/** Convenience: open and parse a spec file. */
SpecParseResult parseCampaignSpecFile(const std::string &path);

} // namespace savat::analysis

#endif // SAVAT_ANALYSIS_SPEC_HH
