/**
 * @file
 * Declarative campaign specifications.
 *
 * A CampaignSpec is the static description of a measurement campaign
 * — everything Campaign/Meter need, but as checkable data instead of
 * live objects: the target machine (optionally with geometry
 * overrides for what-if analysis), the event set or explicit pair
 * list, and the measurement settings. Specs are either built in
 * code (core converts its configs into one before running) or parsed
 * from the `savat-lint` text format:
 *
 *     # sample campaign spec
 *     campaign core2duo-baseline
 *     machine core2duo
 *     events ADD SUB LDM
 *     pair ADD LDM
 *     repetitions 10
 *     alternation 80 kHz
 *     distance 10 cm
 *     band 1 kHz
 *     span 2 kHz
 *     rbw 1 Hz
 *     periods 8
 *     pairing equal-duration
 *     channel em
 *     speculation-window 0 # transient wrong-path depth (0 = off)
 *     clock 2.4 GHz        # machine override
 *     l1 32 KiB            # machine override
 *     l2 4096 KiB          # machine override
 *
 * The parser records the source line of every field and keeps a unit
 * audit trail (bare numbers, wrong dimensions) that the checker
 * turns into SAV-U002/SAV-U003 diagnostics.
 */

#ifndef SAVAT_ANALYSIS_SPEC_HH
#define SAVAT_ANALYSIS_SPEC_HH

#include <istream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kernels/events.hh"
#include "kernels/generator.hh"
#include "support/units.hh"
#include "uarch/machine.hh"

namespace savat::analysis {

/**
 * The measurement fields shared verbatim between the pipeline's
 * meter configuration (pipeline::MeasureConfig) and the checker's
 * settings. Both structs derive from this single source, so a field
 * added here appears in both automatically and the two views can no
 * longer drift; pipeline::toAnalysisSettings slice-copies this base.
 */
struct SharedMeasurementSettings
{
    /** Intended alternation frequency (the paper uses 80 kHz). */
    Frequency alternation = Frequency::khz(80.0);

    /** Antenna distance (the paper uses 10/50/100 cm). */
    Distance distance = Distance::centimeters(10.0);

    /** Burst-length selection policy. */
    kernels::PairingMode pairing = kernels::PairingMode::EqualDuration;

    /** Alternation periods captured for spectral analysis. */
    std::size_t measurePeriods = 8;

    /** Half-width of the measured band around the intended
     * frequency (the paper integrates +/- 1 kHz). */
    double bandHz = 1000.0;

    /** Half-width of the synthesized spectral window. */
    double spanHz = 2000.0;

    /** Spectrum analyzer resolution bandwidth. */
    double rbwHz = 1.0;
};

/**
 * The analysis layer's view of a measurement configuration: the
 * shared fields plus what the spectral checks need to know about the
 * capture front end. The analysis layer stays below core/pipeline in
 * the link order, so the richer configuration is sliced down to this.
 */
struct MeasurementSettings : SharedMeasurementSettings
{
    /** Measure the power rail instead of the EM antenna. */
    bool powerRail = false;

    /** Measure the cache-timing channel (software prime+probe). */
    bool timingChannel = false;

    /**
     * Wrong-path speculation window depth configured for the target
     * (0 = in-order core, no transient execution).
     */
    std::uint32_t specWindow = 0;

    /** Rated band of the loop antenna (EM channel only). */
    Frequency antennaCorner = Frequency::khz(10.0);
    Frequency antennaMax = Frequency::mhz(500.0);
};

/** One suspicious unit usage recorded during parsing. */
struct UnitAudit
{
    std::string field;     //!< spec key ("distance")
    std::string text;      //!< offending token(s) ("10 s")
    std::string expected;  //!< expected dimension ("a length")
    std::size_t line = 0;  //!< 1-based source line
    bool missing = false;  //!< bare number (else: wrong dimension)
};

/** A checkable campaign description. */
struct CampaignSpec
{
    std::string name;     //!< optional display name
    std::string file;     //!< source path ("" for in-memory specs)

    std::string machineId = "core2duo";

    /** Events to pair; empty means the paper's eleven. */
    std::vector<kernels::EventKind> events;

    /** Explicit pairs; empty means the full pairwise matrix. */
    std::vector<std::pair<kernels::EventKind, kernels::EventKind>>
        pairs;

    std::size_t repetitions = 10;

    MeasurementSettings settings;

    /** Geometry overrides applied on top of the registered machine. */
    std::optional<Frequency> clockOverride;
    std::optional<std::uint64_t> l1SizeBytes;
    std::optional<std::uint64_t> l2SizeBytes;

    /**
     * Resilience fields (`retry-attempts`, `retry-backoff`,
     * `fault-plan`). Kept as plain data here: the analysis layer
     * stays below resilience in the link order, so savat-lint's
     * SAV-18xx passes (resilience::lintRetryPolicy/lintFaultPlan)
     * interpret them.
     */
    std::optional<std::size_t> retryAttempts;
    std::optional<double> retryBackoffSeconds;
    std::string faultPlan;

    /** Source line of each parsed field (absent for built specs). */
    std::map<std::string, std::size_t> fieldLines;

    /** Unit problems found while parsing. */
    std::vector<UnitAudit> unitAudits;

    /** Source line of a field; 0 when unknown. */
    std::size_t lineOf(const std::string &field) const;

    /** True when machineId names a registered case-study machine. */
    bool machineKnown() const;

    /**
     * The machine under test: the registered configuration with the
     * spec's overrides applied. Requires machineKnown().
     */
    uarch::MachineConfig machine() const;

    /** The effective event list (defaults to the paper's eleven). */
    std::vector<kernels::EventKind> effectiveEvents() const;
};

/** Outcome of parsing a spec. */
struct SpecParseResult
{
    CampaignSpec spec;
    bool ok = false;
    std::string error;       //!< first hard syntax error
    std::size_t errorLine = 0;
};

/**
 * Parse the text format described above. Unknown keys, unparsable
 * numbers and unknown event names are hard errors; unit problems are
 * recorded in the spec's audit trail for the checker.
 */
SpecParseResult parseCampaignSpec(std::istream &in,
                                  const std::string &filename = "");

/** Convenience: open and parse a spec file. */
SpecParseResult parseCampaignSpecFile(const std::string &path);

} // namespace savat::analysis

#endif // SAVAT_ANALYSIS_SPEC_HH
