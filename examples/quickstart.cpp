/**
 * @file
 * Quickstart: measure the SAVAT of a single instruction pair.
 *
 * Builds the full measurement chain for the Core 2 Duo laptop model,
 * measures ADD vs LDM (an off-chip load) ten times at 10 cm, and
 * prints the per-repetition values plus the simulation diagnostics.
 *
 * Usage: quickstart [A B [machine [distance_cm]]]
 *   e.g. quickstart ADD DIV pentium3m 50
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/meter.hh"
#include "core/report.hh"
#include "support/stats.hh"

using namespace savat;

int
main(int argc, char **argv)
{
    kernels::EventKind a = kernels::EventKind::ADD;
    kernels::EventKind b = kernels::EventKind::LDM;
    std::string machine = "core2duo";
    double distance_cm = 10.0;

    if (argc >= 3) {
        a = kernels::eventByName(argv[1]);
        b = kernels::eventByName(argv[2]);
    }
    if (argc >= 4)
        machine = argv[3];
    if (argc >= 5)
        distance_cm = std::atof(argv[4]);

    core::MeterConfig config;
    config.distance = Distance::centimeters(distance_cm);
    auto meter = core::SavatMeter::forMachine(machine, config);

    std::printf("SAVAT quickstart: %s/%s on %s at %.0f cm, %g kHz\n\n",
                kernels::eventName(a), kernels::eventName(b),
                machine.c_str(), distance_cm,
                config.alternation.inKhz());

    const auto &sim = meter.simulatePair(a, b);
    std::printf("burst lengths: countA=%llu (%.1f cyc/iter)  "
                "countB=%llu (%.1f cyc/iter)\n",
                static_cast<unsigned long long>(sim.counts.countA),
                sim.counts.cpiA,
                static_cast<unsigned long long>(sim.counts.countB),
                sim.counts.cpiB);
    std::printf("alternation: %.3f kHz (duty %.2f), %.3g A/B pairs/s\n\n",
                sim.actualFrequency.inKhz(), sim.duty,
                sim.pairsPerSecond);

    Rng rng(1234);
    RunningStats stats;
    for (int rep = 0; rep < 10; ++rep) {
        auto rep_rng = rng.fork();
        const auto m = meter.measure(sim, rep_rng);
        stats.add(m.savat.inZepto());
        std::printf("  rep %2d: SAVAT = %7.2f zJ   (band power %.3e W, "
                    "tone at %.1f Hz)\n",
                    rep + 1, m.savat.inZepto(), m.bandPowerW, m.toneHz);
    }
    std::printf("\nmean %.2f zJ, std/mean %.3f\n", stats.mean(),
                stats.coefficientOfVariation());
    return 0;
}
