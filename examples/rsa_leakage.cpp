/**
 * @file
 * Using SAVAT the way the paper's introduction motivates: assessing
 * how much side-channel signal an RSA implementation hands an EM
 * attacker, per secret key bit.
 *
 * Square-and-multiply modular exponentiation executes an extra
 * big-number multiplication whenever a key bit is 1. That
 * instruction-level difference is a long sequence of MUL/ADD and
 * cache accesses; the paper's "repetition and combination" argument
 * estimates the per-bit signal as the sum of the sequence's
 * single-instruction SAVAT values. This example compares three
 * implementation styles on the Core 2 Duo model:
 *
 *   1. branchy square-and-multiply (bit => extra multiply),
 *   2. table-based sliding window whose lookups hit L1 or L2
 *      depending on secret-indexed addresses,
 *   3. a constant-time Montgomery ladder (both branches execute the
 *      same instruction mix -- differences only between registers).
 *
 * Usage: rsa_leakage [machine [distance_cm]]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/assessment.hh"
#include "core/meter.hh"

using namespace savat;
using kernels::EventKind;

namespace {

/** An implementation style with a one-line rationale. */
struct Variant
{
    core::ProgramProfile profile;
    const char *note;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string machine = argc >= 2 ? argv[1] : "core2duo";
    const double distance_cm = argc >= 3 ? std::atof(argv[2]) : 10.0;

    core::MeterConfig config;
    config.distance = Distance::centimeters(distance_cm);
    auto meter = core::SavatMeter::forMachine(machine, config);

    // A 2048-bit multiply-accumulate on a 32-bit machine:
    // 64x64 partial products plus carries and table traffic.
    const std::size_t muls = 64 * 64;
    const std::size_t adds = 2 * muls;
    const std::size_t loads = 64 * 64 / 8;

    const std::vector<Variant> variants = {
        {{"square-and-multiply",
          {{"extra multiplication (bit=1)", EventKind::MUL,
            EventKind::NOI, muls},
           {"carry adds", EventKind::ADD, EventKind::NOI, adds},
           {"operand loads", EventKind::LDL1, EventKind::NOI,
            loads}}},
         "bit=1 runs a whole extra multiplication"},
        {{"sliding window (table in L2)",
          {{"secret-indexed table lookups", EventKind::LDL2,
            EventKind::LDL1, loads}}},
         "lookups hit L1 or L2 depending on the secret index"},
        {{"montgomery ladder (constant-time)",
          {{"balanced multiplies", EventKind::MUL, EventKind::MUL,
            muls},
           {"balanced adds", EventKind::ADD, EventKind::ADD, adds},
           {"balanced loads", EventKind::LDL1, EventKind::LDL1,
            loads}}},
         "same instruction mix on both paths"},
    };

    std::printf("RSA-2048 per-key-bit EM signal estimate "
                "(machine %s, %.0f cm)\n\n",
                machine.c_str(), distance_cm);

    for (const auto &v : variants) {
        const auto report = core::assessProgram(meter, v.profile);
        core::printAssessment(std::cout, report);
        const double uses = report.usesForMargin(10.0, 2048.0);
        if (std::isinf(uses)) {
            std::printf("key uses for 10x margin: none -- nothing "
                        "above the floor\n");
        } else {
            std::printf("key uses for 10x margin: %.1f\n",
                        uses < 1.0 ? 1.0 : uses);
        }
        std::printf("(%s)\n\n", v.note);
    }
    std::printf(
        "\nThe SAVAT-guided ranking matches the paper's programmer "
        "guidance: secret-dependent cache-hit levels are by far the "
        "loudest difference, an extra multiplication is barely "
        "distinguishable on this core (the arithmetic group is "
        "tight), and a constant-time ladder leaves nothing above "
        "the measurement floor.\n");
    return 0;
}
