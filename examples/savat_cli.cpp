/**
 * @file
 * savat_cli — a command-line driver over the whole library.
 *
 *   savat_cli events
 *   savat_cli measure ADD LDM [options]
 *   savat_cli spectrum ADD LDM [options]
 *   savat_cli campaign [options]
 *   savat_cli replay <recording-file> [options]
 *   savat_cli assess <profile-file> [options]
 *   savat_cli detect ADD LDM --uses 100 [options]
 *   savat_cli svf [options]
 *   savat_cli report <journal>... [--format=json] [--serve PORT]
 *
 * Common options:
 *   --machine core2duo|pentium3m|turionx2   (default core2duo)
 *   --distance <cm>                         (default 10)
 *   --freq <kHz>                            (default 80)
 *   --reps <n>                              (default 10)
 *   --channel em|power|timing               (signal chain; default em)
 *   --power                                 (alias for --channel power)
 *   --speculation <n>                       (transient wrong-path
 *                                            window depth; 0 = off.
 *                                            The timing channel needs
 *                                            a nonzero window to see
 *                                            wrong-path fills)
 *   --record <path>                         (campaign only: save every
 *                                            analyzer trace for later
 *                                            `savat_cli replay`)
 *   --csv <path>                            (campaign/replay only)
 *   --fixture <path>                        (campaign only: write the
 *                                            matrix in the golden
 *                                            fixture format)
 *   --checkpoint <path>                     (campaign only: write a
 *                                            resumable checkpoint as
 *                                            cells complete)
 *   --checkpoint-every <n>                  (cells between periodic
 *                                            checkpoint writes;
 *                                            default 10)
 *   --resume <path>                         (campaign only: restore
 *                                            finished cells from a
 *                                            checkpoint, then keep
 *                                            checkpointing to it
 *                                            unless --checkpoint
 *                                            names another file)
 *   --fault-plan <plan>                     (campaign only: inject
 *                                            deterministic faults,
 *                                            e.g. nan@every:5 —
 *                                            also SAVAT_FAULT_PLAN)
 *   --jobs <n>                              (campaign/svf worker
 *                                            threads; default: all
 *                                            hardware threads; results
 *                                            are identical for any n)
 *   --isolate threads|procs                 (campaign only: run cells
 *                                            in supervised forked
 *                                            worker processes; crashes
 *                                            cost one cell, never the
 *                                            campaign, and results are
 *                                            byte-identical to thread
 *                                            mode)
 *   --workers <n>                           (--isolate procs: worker
 *                                            process count; default:
 *                                            the --jobs resolution)
 *   --cell-deadline <s>                     (--isolate procs: kill
 *                                            workers stuck on one cell
 *                                            longer than this; 0 = no
 *                                            deadline)
 *   --metrics <path|->                      (dump obs metrics at exit;
 *                                            "-" = stdout, ".txt" =
 *                                            text table, else JSON)
 *   --trace <path>                          (dump Chrome trace JSON
 *                                            at exit)
 *   --journal <path>                        (campaign only: stream the
 *                                            crash-safe run journal,
 *                                            savat-run-journal-v1
 *                                            JSONL; implies metrics)
 *   --serve <port>                          (campaign: expose live
 *                                            metrics over HTTP while
 *                                            the run executes; report:
 *                                            serve the aggregated
 *                                            snapshot. Port 0 picks a
 *                                            free port; the bound one
 *                                            prints as "port=N")
 *   --format table|json                     (report output format;
 *                                            --format=json also
 *                                            accepted)
 *
 * The SAVAT_METRICS / SAVAT_TRACE environment variables set the same
 * paths; the flags override them.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/assessment.hh"
#include "core/campaign.hh"
#include "core/clustering.hh"
#include "core/detection.hh"
#include "core/report.hh"
#include "core/svf.hh"
#include "support/httpd.hh"
#include "support/io.hh"
#include "support/journal.hh"
#include "support/obs.hh"
#include "support/progress.hh"
#include "support/stats.hh"

using namespace savat;
using kernels::EventKind;

namespace {

struct Options
{
    std::string machine = "core2duo";
    double distanceCm = 10.0;
    double freqKhz = 80.0;
    int reps = 10;
    int jobs = 0;
    int speculation = 0;
    std::string channel = "em";
    double uses = 100.0;
    std::string isolate = "threads";
    int workers = 0;
    double cellDeadline = 0.0;
    std::string record;
    std::string csv;
    std::string fixture;
    std::string checkpoint;
    std::string resume;
    std::string faultPlan;
    int checkpointEvery = 10;
    std::string metrics;
    std::string trace;
    std::string journal;
    std::string format = "table";
    int serve = -1; //!< HTTP port to expose metrics on; -1 = off
    std::vector<std::string> positional;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: savat_cli <events|measure|spectrum|campaign|replay|"
        "assess|detect|svf|report> [args] [options]\n"
        "options: --machine M --distance CM --freq KHZ --reps N "
        "--jobs N --channel em|power|timing --uses N\n"
        "         --speculation N  (transient wrong-path window "
        "depth; 0 = off)\n"
        "         --record PATH (campaign: save traces for replay) "
        "--csv PATH --fixture PATH\n"
        "         --checkpoint PATH --checkpoint-every N "
        "--resume PATH  (campaign crash recovery)\n"
        "         --fault-plan PLAN  (campaign fault injection, e.g. "
        "nan@every:5; also SAVAT_FAULT_PLAN)\n"
        "         --isolate threads|procs --workers N "
        "--cell-deadline S  (campaign crash isolation: shard cells\n"
        "           across supervised worker processes; results are "
        "byte-identical to thread mode)\n"
        "         --metrics PATH|- --trace PATH  (telemetry export; "
        "also SAVAT_METRICS / SAVAT_TRACE)\n"
        "         --journal PATH  (campaign: crash-safe JSONL run "
        "journal; read back with `savat_cli report`)\n"
        "         --serve PORT --format table|json  (report/campaign "
        "metrics exposition)\n");
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                usage();
            }
            return argv[++i];
        };
        if (arg == "--machine")
            opt.machine = value();
        else if (arg == "--distance")
            opt.distanceCm = std::atof(value().c_str());
        else if (arg == "--freq")
            opt.freqKhz = std::atof(value().c_str());
        else if (arg == "--reps")
            opt.reps = std::atoi(value().c_str());
        else if (arg == "--jobs")
            opt.jobs = std::atoi(value().c_str());
        else if (arg == "--isolate")
            opt.isolate = value();
        else if (arg == "--workers")
            opt.workers = std::atoi(value().c_str());
        else if (arg == "--cell-deadline")
            opt.cellDeadline = std::atof(value().c_str());
        else if (arg == "--speculation")
            opt.speculation = std::atoi(value().c_str());
        else if (arg == "--uses")
            opt.uses = std::atof(value().c_str());
        else if (arg == "--csv")
            opt.csv = value();
        else if (arg == "--record")
            opt.record = value();
        else if (arg == "--fixture")
            opt.fixture = value();
        else if (arg == "--checkpoint")
            opt.checkpoint = value();
        else if (arg == "--checkpoint-every")
            opt.checkpointEvery = std::atoi(value().c_str());
        else if (arg == "--resume")
            opt.resume = value();
        else if (arg == "--fault-plan")
            opt.faultPlan = value();
        else if (arg == "--metrics")
            opt.metrics = value();
        else if (arg == "--trace")
            opt.trace = value();
        else if (arg == "--journal")
            opt.journal = value();
        else if (arg == "--serve")
            opt.serve = std::atoi(value().c_str());
        else if (arg == "--format")
            opt.format = value();
        else if (arg.rfind("--format=", 0) == 0)
            opt.format = arg.substr(std::strlen("--format="));
        else if (arg == "--channel")
            opt.channel = value();
        else if (arg == "--power")
            opt.channel = "power";
        else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
        } else
            opt.positional.push_back(arg);
    }
    return opt;
}

pipeline::ChannelKind
channelKind(const Options &opt)
{
    const auto kind = pipeline::channelByName(opt.channel);
    if (!kind) {
        // Enumerate through channelName() so a future chain cannot
        // be forgotten here.
        std::string known;
        for (auto k : {pipeline::ChannelKind::Em,
                       pipeline::ChannelKind::Power,
                       pipeline::ChannelKind::Timing}) {
            known += known.empty() ? "" : "|";
            known += pipeline::channelName(k);
        }
        std::fprintf(stderr,
                     "unknown channel '%s' (registered chains: %s; "
                     "recorded traces replay via `savat_cli "
                     "replay`)\n",
                     opt.channel.c_str(), known.c_str());
        usage();
    }
    return *kind;
}

core::MeterConfig
meterConfig(const Options &opt)
{
    core::MeterConfig cfg;
    cfg.distance = Distance::centimeters(opt.distanceCm);
    cfg.alternation = Frequency::khz(opt.freqKhz);
    cfg.channel = channelKind(opt);
    cfg.specWindow =
        static_cast<std::uint32_t>(std::max(0, opt.speculation));
    return cfg;
}

int
cmdEvents()
{
    std::printf("%-6s %s\n", "name", "description");
    for (auto e : kernels::extendedEvents()) {
        std::printf("%-6s %s%s\n", kernels::eventName(e),
                    kernels::eventDescription(e),
                    kernels::isBranchEvent(e) ||
                            kernels::isTransientEvent(e)
                        ? "  [extension]"
                        : "");
    }
    return 0;
}

int
cmdMeasure(const Options &opt)
{
    if (opt.positional.size() != 2)
        usage();
    const auto a = kernels::eventByName(opt.positional[0]);
    const auto b = kernels::eventByName(opt.positional[1]);
    auto meter =
        core::SavatMeter::forMachine(opt.machine, meterConfig(opt));
    const auto &sim = meter.simulatePair(a, b);
    std::printf("machine %s, %.0f cm, %.0f kHz, %s channel\n",
                opt.machine.c_str(), opt.distanceCm, opt.freqKhz,
                pipeline::channelName(channelKind(opt)));
    std::printf("counts %llu/%llu, realized %.3f kHz, %.3g pairs/s\n",
                static_cast<unsigned long long>(sim.counts.countA),
                static_cast<unsigned long long>(sim.counts.countB),
                sim.actualFrequency.inKhz(), sim.pairsPerSecond);
    Rng rng(1);
    RunningStats stats;
    for (int i = 0; i < opt.reps; ++i) {
        auto rep = rng.fork();
        const auto m = meter.measure(sim, rep);
        stats.add(m.savat.inZepto());
        std::printf("  rep %2d: %7.2f zJ\n", i + 1,
                    m.savat.inZepto());
    }
    std::printf("mean %.2f zJ, std/mean %.3f\n", stats.mean(),
                stats.coefficientOfVariation());
    return 0;
}

int
cmdSpectrum(const Options &opt)
{
    if (opt.positional.size() != 2)
        usage();
    const auto a = kernels::eventByName(opt.positional[0]);
    const auto b = kernels::eventByName(opt.positional[1]);
    auto meter =
        core::SavatMeter::forMachine(opt.machine, meterConfig(opt));
    Rng rng(1);
    const auto m = meter.measurePair(a, b, rng);
    std::printf("SAVAT %.2f zJ, tone at %.1f Hz\n", m.savat.inZepto(),
                m.toneHz);
    const double f0 = meter.config().alternation.inHz();
    core::printSpectrum(std::cout, m.trace, f0 - 1000.0, f0 + 1000.0);
    return 0;
}

/** Render through `print` into a string, then write atomically. */
template <typename PrintFn>
bool
writeReport(const std::string &path, const char *what, PrintFn print)
{
    std::ostringstream body;
    print(body);
    std::string error;
    if (!support::writeFileAtomically(path, body.str(), &error)) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    std::printf("%s written to %s\n", what, path.c_str());
    return true;
}

/**
 * Serve a metrics snapshot: /metrics (Prometheus), /metrics.json,
 * or /healthz — a compact worker-pool health document (workers
 * alive, deaths/restarts, quarantined cells) fed by the
 * savat::service metrics. All counters are zero for in-process
 * (--isolate threads) runs.
 */
bool
serveSnapshot(const obs::MetricsSnapshot &snap,
              const std::string &path, std::string &contentType,
              std::string &body)
{
    std::ostringstream os;
    if (path == "/metrics" || path == "/") {
        obs::writePrometheusText(os, snap);
        contentType = "text/plain; version=0.0.4";
    } else if (path == "/metrics.json") {
        obs::writeMetricsJson(os, snap);
        contentType = "application/json";
    } else if (path == "/healthz") {
        const auto counter = [&snap](const char *name) {
            const auto it = snap.counters.find(name);
            return it == snap.counters.end() ? std::uint64_t{0}
                                             : it->second;
        };
        const auto gauge = [&snap](const char *name) {
            const auto it = snap.gauges.find(name);
            return it == snap.gauges.end() ? 0.0 : it->second;
        };
        const std::uint64_t quarantined =
            counter("service.quarantined_cells");
        os << "{\"status\":\""
           << (quarantined > 0 ? "degraded" : "ok")
           << "\",\"workers_alive\":"
           << static_cast<std::uint64_t>(
                  gauge("service.workers_alive"))
           << ",\"worker_deaths\":"
           << counter("service.worker_deaths")
           << ",\"restarts\":" << counter("service.restarts")
           << ",\"quarantined_cells\":" << quarantined
           << ",\"cells_dispatched\":"
           << counter("service.cells_dispatched") << "}\n";
        contentType = "application/json";
    } else {
        return false;
    }
    body = os.str();
    return true;
}

int
cmdCampaign(const Options &opt)
{
    core::CampaignConfig cfg;
    cfg.machineId = opt.machine;
    cfg.repetitions = static_cast<std::size_t>(opt.reps);
    cfg.jobs = static_cast<std::size_t>(std::max(0, opt.jobs));
    cfg.meter = meterConfig(opt);
    cfg.keepTraces = !opt.record.empty();
    cfg.checkpointPath = opt.checkpoint;
    cfg.resumePath = opt.resume;
    // Resuming keeps checkpointing to the same file unless
    // --checkpoint picked a different one.
    if (cfg.checkpointPath.empty())
        cfg.checkpointPath = opt.resume;
    cfg.checkpointEvery =
        static_cast<std::size_t>(std::max(1, opt.checkpointEvery));
    cfg.faultPlan = opt.faultPlan;
    if (opt.isolate == "procs")
        cfg.isolate = core::IsolateMode::Procs;
    else if (opt.isolate != "threads") {
        std::fprintf(stderr,
                     "unknown isolation mode '%s' (threads|procs)\n",
                     opt.isolate.c_str());
        usage();
    }
    cfg.workers = static_cast<std::size_t>(std::max(0, opt.workers));
    cfg.cellDeadlineSeconds = std::max(0.0, opt.cellDeadline);
    cfg.journalPath = opt.journal;
    // The journal's run-end event embeds the metrics snapshot (and
    // the report layer feeds on the stage attribution), so --journal
    // implies metrics collection even without --metrics.
    if (!cfg.journalPath.empty())
        obs::setMetricsEnabled(true);
    for (const auto &name : opt.positional)
        cfg.events.push_back(kernels::eventByName(name));

    // Live exposition: scrape /metrics (Prometheus text) or
    // /metrics.json while the campaign runs.
    support::HttpServer server;
    std::thread serverThread;
    if (opt.serve >= 0) {
        obs::setMetricsEnabled(true);
        std::string error;
        if (!server.start(
                static_cast<std::uint16_t>(opt.serve),
                [](const std::string &path, std::string &type,
                   std::string &body) {
                    return serveSnapshot(
                        obs::Registry::instance().snapshot(), path,
                        type, body);
                },
                &error)) {
            std::fprintf(stderr, "cannot serve metrics: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("port=%d\n", server.port());
        std::fflush(stdout);
        serverThread = std::thread([&server] { server.serve(); });
    }

    obs::ProgressMeter meter("campaign");
    const auto res = core::runCampaign(cfg, {}, meter.sink());
    if (serverThread.joinable()) {
        server.stop();
        serverThread.join();
    }
    core::printMatrixTable(std::cout, res.matrix);
    std::cout << "\n";
    core::printMatrixHeatmap(std::cout, res.matrix);
    const std::size_t k = std::min<std::size_t>(
        4, res.matrix.size());
    std::cout << "\nclusters(k=" << k << "): "
              << core::describeClusters(
                     core::clusterEvents(res.matrix, k))
              << "\n";
    if (res.restoredCells() > 0 || res.retriedCells() > 0 ||
        res.degradedCells() > 0)
        std::printf("resilience: %zu restored, %zu retried, "
                    "%zu degraded of %zu pairs\n",
                    res.restoredCells(), res.retriedCells(),
                    res.degradedCells(), res.pairs.size());
    if (!opt.record.empty()) {
        std::string error;
        if (!pipeline::saveRecordingFile(
                opt.record, core::recordCampaign(res), &error)) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         opt.record.c_str(), error.c_str());
            return 1;
        }
        std::printf("recording written to %s\n", opt.record.c_str());
    }
    if (!opt.csv.empty() &&
        !writeReport(opt.csv, "CSV", [&](std::ostream &os) {
            core::printMatrixCsv(os, res.matrix);
        }))
        return 1;
    if (!opt.fixture.empty() &&
        !writeReport(opt.fixture, "fixture", [&](std::ostream &os) {
            core::printMatrixFixture(os, res.matrix);
        }))
        return 1;
    return res.degradedCells() > 0 ? 3 : 0;
}

int
cmdReplay(const Options &opt)
{
    if (opt.positional.size() != 1)
        usage();
    const auto parsed =
        pipeline::loadRecordingFile(opt.positional[0]);
    if (!parsed.ok) {
        std::fprintf(stderr, "%s: %s\n", opt.positional[0].c_str(),
                     parsed.error.c_str());
        return 1;
    }
    const auto &rec = parsed.recording;
    std::printf("machine %s, %s channel, %.0f kHz, %zu cells\n",
                rec.machineId.c_str(), rec.channel.c_str(),
                rec.alternationHz / 1000.0, rec.cells.size());
    const auto matrix = core::replayMatrix(rec);
    core::printMatrixTable(std::cout, matrix);
    if (!opt.csv.empty() &&
        !writeReport(opt.csv, "CSV", [&](std::ostream &os) {
            core::printMatrixCsv(os, matrix);
        }))
        return 1;
    return 0;
}

int
cmdAssess(const Options &opt)
{
    if (opt.positional.size() != 1)
        usage();
    std::ifstream in(opt.positional[0]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n",
                     opt.positional[0].c_str());
        return 1;
    }
    const auto parsed = core::parseProgramProfile(in);
    if (!parsed.ok) {
        std::fprintf(stderr, "%s:%zu: %s\n",
                     opt.positional[0].c_str(), parsed.errorLine,
                     parsed.error.c_str());
        return 1;
    }
    auto meter =
        core::SavatMeter::forMachine(opt.machine, meterConfig(opt));
    const auto report =
        core::assessProgram(meter, parsed.profile, opt.reps);
    core::printAssessment(std::cout, report);
    const double uses10 = report.usesForMargin(10.0);
    if (std::isinf(uses10)) {
        std::printf("nothing above the measurement floor\n");
    } else {
        std::printf("uses for 10x margin: %.1f\n", uses10);
        std::printf("uses to decide a key bit at 1e-3 error: %.1f\n",
                    report.usesForErrorRate(1e-3));
    }
    return 0;
}

int
cmdDetect(const Options &opt)
{
    if (opt.positional.size() != 2)
        usage();
    const auto a = kernels::eventByName(opt.positional[0]);
    const auto b = kernels::eventByName(opt.positional[1]);
    auto meter =
        core::SavatMeter::forMachine(opt.machine, meterConfig(opt));
    const double signal = core::netSavatZj(meter, a, b, opt.reps);
    const double noise =
        core::meanSavatZj(meter, a, a, opt.reps);
    const double d = core::dPrime(signal, noise, opt.uses);
    std::printf("signal %.3f zJ/use, noise scale %.3f zJ\n", signal,
                noise);
    std::printf("after %.0f uses: d' = %.2f, error %.3g, AUC %.4f\n",
                opt.uses, d, core::errorProbability(d),
                core::rocArea(d));
    for (double err : {0.25, 0.05, 1e-3, 1e-6}) {
        std::printf("uses for error %g: %.1f\n", err,
                    core::usesForError(signal, noise, err));
    }
    return 0;
}

int
cmdReport(const Options &opt)
{
    if (opt.positional.empty())
        usage();
    if (opt.format != "table" && opt.format != "json") {
        std::fprintf(stderr,
                     "unknown report format '%s' (table|json)\n",
                     opt.format.c_str());
        usage();
    }
    obs::RunReport report;
    std::string error;
    if (!obs::aggregateJournals(opt.positional, report, &error)) {
        std::fprintf(stderr, "report: %s\n", error.c_str());
        return 1;
    }
    if (opt.format == "json")
        obs::writeReportJson(std::cout, report);
    else
        obs::writeReportTables(std::cout, report);
    std::cout.flush();
    if (opt.serve >= 0) {
        support::HttpServer server;
        if (!server.start(
                static_cast<std::uint16_t>(opt.serve),
                [&report](const std::string &path,
                          std::string &type, std::string &body) {
                    return serveSnapshot(report.metrics, path, type,
                                         body);
                },
                &error)) {
            std::fprintf(stderr, "cannot serve report: %s\n",
                         error.c_str());
            return 1;
        }
        std::printf("port=%d\n", server.port());
        std::fflush(stdout);
        server.serve(); // until killed; scripts background + kill
    }
    return 0;
}

int
cmdSvf(const Options &opt)
{
    const auto machine = uarch::machineById(opt.machine);
    const auto profile = em::emissionProfileFor(opt.machine);
    const auto workload = core::buildPhasedWorkload(machine, 200);
    core::SvfConfig cfg;
    cfg.distance = Distance::centimeters(opt.distanceCm);
    cfg.windows = 48;
    cfg.jobs = static_cast<std::size_t>(std::max(0, opt.jobs));
    cfg.channel = channelKind(opt);
    obs::ProgressMeter meter("svf");
    const auto res = core::computeSvf(machine, profile,
                                      em::DistanceModel(), workload,
                                      cfg, meter.callback());
    std::printf("SVF(%s, %.0f cm) = %.3f over %zu windows\n",
                opt.machine.c_str(), opt.distanceCm, res.svf,
                res.windows);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    const Options opt = parseArgs(argc, argv);
    obs::configureFromEnvironment();
    if (!opt.metrics.empty()) {
        obs::setMetricsEnabled(true);
        obs::requestMetricsDump(opt.metrics);
    }
    if (!opt.trace.empty()) {
        obs::setTraceEnabled(true);
        obs::requestTraceDump(opt.trace);
    }
    if (cmd == "events")
        return cmdEvents();
    if (cmd == "measure")
        return cmdMeasure(opt);
    if (cmd == "spectrum")
        return cmdSpectrum(opt);
    if (cmd == "campaign")
        return cmdCampaign(opt);
    if (cmd == "replay")
        return cmdReplay(opt);
    if (cmd == "assess")
        return cmdAssess(opt);
    if (cmd == "detect")
        return cmdDetect(opt);
    if (cmd == "svf")
        return cmdSvf(opt);
    if (cmd == "report")
        return cmdReport(opt);
    usage();
}
