/**
 * @file
 * Attacker-range study: how far away can each instruction-level
 * difference still be distinguished?
 *
 * Sweeps the antenna distance from 5 cm to 2 m for a set of pairs,
 * reports SAVAT versus distance, and estimates each pair's
 * "detection range" -- the distance at which the pair's signal
 * drops below 1.5x the same-instruction residual (the paper's A/A
 * floor). Reproduces the paper's Section V.B conclusion: only
 * off-chip activity remains usable at desk-to-desk distances.
 *
 * Usage: distance_study [machine]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/meter.hh"
#include "support/stats.hh"

using namespace savat;
using kernels::EventKind;

namespace {

double
savatAt(const std::string &machine, double cm, EventKind a,
        EventKind b)
{
    core::MeterConfig config;
    config.distance = Distance::centimeters(cm);
    auto meter = core::SavatMeter::forMachine(machine, config);
    const auto &sim = meter.simulatePair(a, b);
    Rng rng(99);
    RunningStats s;
    for (int i = 0; i < 6; ++i) {
        auto rep = rng.fork();
        s.add(meter.measure(sim, rep).savat.inZepto());
    }
    return s.mean();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string machine = argc >= 2 ? argv[1] : "core2duo";
    const std::vector<double> distances = {5,  10,  25,  50,
                                           75, 100, 150, 200};
    const std::vector<std::pair<EventKind, EventKind>> pairs = {
        {EventKind::ADD, EventKind::LDM},
        {EventKind::ADD, EventKind::STM},
        {EventKind::ADD, EventKind::LDL2},
        {EventKind::ADD, EventKind::DIV},
        {EventKind::ADD, EventKind::LDL1},
    };

    std::printf("SAVAT vs antenna distance [zJ], machine %s\n\n",
                machine.c_str());
    std::printf("%-10s", "pair");
    for (double d : distances)
        std::printf("%8.0fcm", d);
    std::printf("\n");

    std::vector<std::vector<double>> table;
    for (const auto &[a, b] : pairs) {
        std::printf("%s/%-5s", kernels::eventName(a),
                    kernels::eventName(b));
        std::vector<double> row;
        for (double d : distances) {
            const double v = savatAt(machine, d, a, b);
            row.push_back(v);
            std::printf("%10.2f", v);
        }
        table.push_back(row);
        std::printf("\n");
    }

    // Same-instruction floor per distance.
    std::printf("%-10s", "A/A floor");
    std::vector<double> floor_row;
    for (double d : distances) {
        const double v =
            savatAt(machine, d, EventKind::ADD, EventKind::ADD);
        floor_row.push_back(v);
        std::printf("%10.2f", v);
    }
    std::printf("\n\nDetection range (signal > 1.5x A/A floor):\n");
    for (std::size_t p = 0; p < pairs.size(); ++p) {
        double range_cm = 0.0;
        for (std::size_t i = 0; i < distances.size(); ++i) {
            if (table[p][i] > 1.5 * floor_row[i])
                range_cm = distances[i];
        }
        std::printf("  %s/%-5s : %s\n",
                    kernels::eventName(pairs[p].first),
                    kernels::eventName(pairs[p].second),
                    range_cm > 0.0
                        ? (std::to_string(
                               static_cast<int>(range_cm)) +
                           " cm")
                              .c_str()
                        : "below floor everywhere");
    }
    std::printf("\nOff-chip pairs stay detectable at desk-to-desk "
                "range; L2 and divider contrasts are near-field "
                "only -- measure at the distance your threat model "
                "assumes (Section V.B).\n");
    return 0;
}
