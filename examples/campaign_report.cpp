/**
 * @file
 * Full measurement-campaign driver: runs the 11x11 pairwise SAVAT
 * sweep for a machine/distance, prints the paper-style report
 * (value table, grayscale map, bar chart, validation statistics,
 * clustering) and writes machine-readable CSV.
 *
 * Usage: campaign_report [machine [distance_cm [reps [csv_path]]]]
 *   e.g. campaign_report pentium3m 10 10 /tmp/p3m.csv
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/campaign.hh"
#include "core/clustering.hh"
#include "core/report.hh"

using namespace savat;

int
main(int argc, char **argv)
{
    core::CampaignConfig config;
    config.machineId = argc >= 2 ? argv[1] : "core2duo";
    const double distance_cm = argc >= 3 ? std::atof(argv[2]) : 10.0;
    config.meter.distance = Distance::centimeters(distance_cm);
    config.repetitions =
        argc >= 4 ? static_cast<std::size_t>(std::atoi(argv[3])) : 10;
    const std::string csv_path = argc >= 5 ? argv[4] : "";

    std::printf("SAVAT campaign: %s at %.0f cm, %zu repetitions\n",
                config.machineId.c_str(), distance_cm,
                config.repetitions);

    const auto result = core::runCampaign(
        config, [](std::size_t done, std::size_t total) {
            std::fprintf(stderr, "\r  pair %zu/%zu ...", done, total);
            if (done == total)
                std::fprintf(stderr, "\n");
        });

    std::cout << "\nSAVAT matrix [zJ]:\n\n";
    core::printMatrixTable(std::cout, result.matrix);
    std::cout << "\nGrayscale visualization:\n\n";
    core::printMatrixHeatmap(std::cout, result.matrix);
    std::cout << "\nSelected pairings:\n\n";
    core::printSelectedBars(std::cout, result.matrix);
    std::cout << "\nCampaign summary:\n\n";
    core::printCampaignSummary(std::cout, result);

    std::cout << "\nInstruction groups (k=4, SAVAT distance):\n  "
              << core::describeClusters(
                     core::clusterEvents(result.matrix, 4))
              << "\n";

    if (!csv_path.empty()) {
        std::ofstream csv(csv_path);
        if (!csv) {
            std::fprintf(stderr, "cannot write %s\n",
                         csv_path.c_str());
            return 1;
        }
        core::printMatrixCsv(csv, result.matrix);
        std::printf("\nCSV written to %s\n", csv_path.c_str());
    }
    return 0;
}
