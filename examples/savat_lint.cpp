/**
 * @file
 * savat-lint — static validation of campaign spec files.
 *
 *   savat_lint [options] <spec>...
 *
 * Runs analysis::Checker (including the savat::analysis::ir dataflow
 * analyzer over every kernel the spec implies) over each spec and
 * prints the diagnostics in file:line form, or as one JSON document
 * under the stable savat-lint-diagnostics-v1 schema.
 *
 * Exit status: 0 when every spec is clean of errors, 1 when any
 * error-level diagnostic fires (or --werror and any warning fires),
 * 2 on usage/parse failures. --format=json mirrors the exit code in
 * the document.
 *
 * Options:
 *   --werror          treat warnings as errors
 *   --quiet           suppress notes (text format only)
 *   --summary         print a per-spec finding count
 *   --format=FMT      text (default) or json
 *   --dump-cfg        print each kernel's control-flow graph
 *   --dump-liveness   print each kernel's liveness facts
 *   --dump-footprint  print each kernel's loop/footprint intervals
 *
 * The dump options print the analyzer's intermediate results for
 * every kernel a spec implies; they are text-only and cannot be
 * combined with --format=json.
 */

#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/checker.hh"
#include "analysis/ir/analyzer.hh"
#include "analysis/jsonout.hh"
#include "analysis/spec.hh"
#include "resilience/fault.hh"
#include "resilience/retry.hh"

using namespace savat;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: savat_lint [--werror] [--quiet] [--summary]\n"
        "                  [--format=text|json] [--dump-cfg]\n"
        "                  [--dump-liveness] [--dump-footprint] "
        "<spec>...\n");
    std::exit(2);
}

/**
 * The SAV-18xx resilience passes: the spec's retry policy and fault
 * plan, annotated with the spec file/line so findings print in the
 * same file:line form as the checker's.
 */
void
lintResilience(const analysis::CampaignSpec &spec,
               analysis::Report &report)
{
    analysis::Report found;
    // Only a spec that configures its retry policy opts into the
    // SAV-1801/1802 passes; the library default is always usable.
    if (spec.retryAttempts || spec.retryBackoffSeconds) {
        resilience::RetryPolicy policy;
        if (spec.retryAttempts)
            policy.maxAttempts = *spec.retryAttempts;
        if (spec.retryBackoffSeconds)
            policy.backoffSeconds = *spec.retryBackoffSeconds;

        const double alternationHz =
            spec.settings.alternation.inHz();
        const double budgetSeconds =
            alternationHz > 0.0
                ? static_cast<double>(spec.repetitions) *
                      static_cast<double>(
                          spec.settings.measurePeriods) /
                      alternationHz
                : 0.0;
        resilience::lintRetryPolicy(policy, budgetSeconds, found);
    }
    if (!spec.faultPlan.empty()) {
        const auto events = spec.effectiveEvents();
        const std::size_t pairCount =
            spec.pairs.empty() ? events.size() * events.size()
                               : spec.pairs.size();
        resilience::lintFaultPlan(spec.faultPlan, pairCount, found);
    }
    for (auto d : found.diagnostics()) {
        d.file = spec.file;
        d.line = spec.lineOf(d.field);
        report.add(std::move(d));
    }
}

/** The distinct kernels a spec implies (unordered combinations). */
std::set<std::pair<kernels::EventKind, kernels::EventKind>>
specCombos(const analysis::CampaignSpec &spec)
{
    std::set<std::pair<kernels::EventKind, kernels::EventKind>>
        combos;
    if (spec.pairs.empty()) {
        const auto events = spec.effectiveEvents();
        for (auto a : events)
            for (auto b : events)
                combos.insert(std::minmax(a, b));
    } else {
        for (const auto &[a, b] : spec.pairs)
            combos.insert(std::minmax(a, b));
    }
    return combos;
}

/** Print the requested analyzer dumps for every kernel of a spec. */
void
dumpKernels(const analysis::CampaignSpec &spec, bool cfg,
            bool liveness, bool footprint)
{
    if (!spec.machineKnown())
        return;
    const auto m = spec.machine();
    for (const auto &[a, b] : specCombos(spec)) {
        const auto kernel =
            kernels::buildAlternationKernel(m, a, b, 2, 2);
        const auto ka = analysis::ir::analyzeKernel(kernel, &m);
        if (cfg)
            std::fputs(ka.cfg.dump(ka.ir).c_str(), stdout);
        if (liveness)
            std::fputs(ka.liveness.dump(ka.ir, ka.cfg).c_str(),
                       stdout);
        if (footprint)
            std::fputs(ka.intervals.dump(ka.ir, ka.cfg).c_str(),
                       stdout);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool werror = false, quiet = false, summary = false;
    bool json = false;
    bool dump_cfg = false, dump_liveness = false,
         dump_footprint = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--werror") == 0)
            werror = true;
        else if (std::strcmp(argv[i], "--quiet") == 0)
            quiet = true;
        else if (std::strcmp(argv[i], "--summary") == 0)
            summary = true;
        else if (std::strcmp(argv[i], "--format=text") == 0)
            json = false;
        else if (std::strcmp(argv[i], "--format=json") == 0)
            json = true;
        else if (std::strcmp(argv[i], "--dump-cfg") == 0)
            dump_cfg = true;
        else if (std::strcmp(argv[i], "--dump-liveness") == 0)
            dump_liveness = true;
        else if (std::strcmp(argv[i], "--dump-footprint") == 0)
            dump_footprint = true;
        else if (argv[i][0] == '-')
            usage();
        else
            paths.emplace_back(argv[i]);
    }
    if (paths.empty())
        usage();
    const bool dumping = dump_cfg || dump_liveness || dump_footprint;
    if (json && dumping)
        usage(); // dumps are a human-readable debugging aid

    const analysis::Checker checker;
    std::vector<analysis::SpecLintResult> results;
    bool parse_failed = false;
    bool failed = false;
    for (const auto &path : paths) {
        analysis::SpecLintResult result;
        result.file = path;
        const auto parsed = analysis::parseCampaignSpecFile(path);
        if (!parsed.ok) {
            result.parseFailed = true;
            result.parseError = parsed.error;
            result.parseErrorLine = parsed.errorLine;
            if (!json) {
                if (parsed.errorLine > 0) {
                    std::fprintf(stderr, "%s:%zu: error: %s\n",
                                 path.c_str(), parsed.errorLine,
                                 parsed.error.c_str());
                } else {
                    std::fprintf(stderr, "error: %s\n",
                                 parsed.error.c_str());
                }
            }
            parse_failed = true;
            results.push_back(std::move(result));
            continue;
        }
        auto report = checker.check(parsed.spec);
        lintResilience(parsed.spec, report);

        if (!json) {
            std::size_t shown = 0;
            for (const auto &d : report.diagnostics()) {
                if (quiet && d.severity == analysis::Severity::Note)
                    continue;
                std::printf("%s\n", d.toString().c_str());
                ++shown;
            }
            if (summary || shown > 0) {
                std::printf(
                    "%s: %zu error(s), %zu warning(s), %zu "
                    "note(s)\n",
                    path.c_str(),
                    report.count(analysis::Severity::Error),
                    report.count(analysis::Severity::Warning),
                    report.count(analysis::Severity::Note));
            }
        }
        if (dumping)
            dumpKernels(parsed.spec, dump_cfg, dump_liveness,
                        dump_footprint);
        if (report.hasErrors() ||
            (werror &&
             report.count(analysis::Severity::Warning) > 0))
            failed = true;
        result.report = std::move(report);
        results.push_back(std::move(result));
    }
    const int code = parse_failed ? 2 : failed ? 1 : 0;
    if (json) {
        std::fputs(analysis::lintResultsToJson(results, code).c_str(),
                   stdout);
    }
    return code;
}
