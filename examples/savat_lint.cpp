/**
 * @file
 * savat-lint — static validation of campaign spec files.
 *
 *   savat_lint [options] <spec>...
 *
 * Runs analysis::Checker over each spec and prints its diagnostics
 * in file:line form. Exit status: 0 when every spec is clean of
 * errors, 1 when any error-level diagnostic fires (or --werror and
 * any warning fires), 2 on usage/parse failures.
 *
 * Options:
 *   --werror   treat warnings as errors
 *   --quiet    suppress notes
 *   --summary  print a per-spec finding count
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/checker.hh"
#include "analysis/spec.hh"
#include "resilience/fault.hh"
#include "resilience/retry.hh"

using namespace savat;

namespace {

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: savat_lint [--werror] [--quiet] [--summary] "
                 "<spec>...\n");
    std::exit(2);
}

/**
 * The SAV-18xx resilience passes: the spec's retry policy and fault
 * plan, annotated with the spec file/line so findings print in the
 * same file:line form as the checker's.
 */
void
lintResilience(const analysis::CampaignSpec &spec,
               analysis::Report &report)
{
    analysis::Report found;
    // Only a spec that configures its retry policy opts into the
    // SAV-1801/1802 passes; the library default is always usable.
    if (spec.retryAttempts || spec.retryBackoffSeconds) {
        resilience::RetryPolicy policy;
        if (spec.retryAttempts)
            policy.maxAttempts = *spec.retryAttempts;
        if (spec.retryBackoffSeconds)
            policy.backoffSeconds = *spec.retryBackoffSeconds;

        const double alternationHz =
            spec.settings.alternation.inHz();
        const double budgetSeconds =
            alternationHz > 0.0
                ? static_cast<double>(spec.repetitions) *
                      static_cast<double>(
                          spec.settings.measurePeriods) /
                      alternationHz
                : 0.0;
        resilience::lintRetryPolicy(policy, budgetSeconds, found);
    }
    if (!spec.faultPlan.empty()) {
        const auto events = spec.effectiveEvents();
        const std::size_t pairCount =
            spec.pairs.empty() ? events.size() * events.size()
                               : spec.pairs.size();
        resilience::lintFaultPlan(spec.faultPlan, pairCount, found);
    }
    for (auto d : found.diagnostics()) {
        d.file = spec.file;
        d.line = spec.lineOf(d.field);
        report.add(std::move(d));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool werror = false, quiet = false, summary = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--werror") == 0)
            werror = true;
        else if (std::strcmp(argv[i], "--quiet") == 0)
            quiet = true;
        else if (std::strcmp(argv[i], "--summary") == 0)
            summary = true;
        else if (argv[i][0] == '-')
            usage();
        else
            paths.emplace_back(argv[i]);
    }
    if (paths.empty())
        usage();

    const analysis::Checker checker;
    bool parse_failed = false;
    bool failed = false;
    for (const auto &path : paths) {
        const auto parsed = analysis::parseCampaignSpecFile(path);
        if (!parsed.ok) {
            if (parsed.errorLine > 0) {
                std::fprintf(stderr, "%s:%zu: error: %s\n",
                             path.c_str(), parsed.errorLine,
                             parsed.error.c_str());
            } else {
                std::fprintf(stderr, "error: %s\n",
                             parsed.error.c_str());
            }
            parse_failed = true;
            continue;
        }
        auto report = checker.check(parsed.spec);
        lintResilience(parsed.spec, report);
        std::size_t shown = 0;
        for (const auto &d : report.diagnostics()) {
            if (quiet && d.severity == analysis::Severity::Note)
                continue;
            std::printf("%s\n", d.toString().c_str());
            ++shown;
        }
        if (summary || shown > 0) {
            std::printf(
                "%s: %zu error(s), %zu warning(s), %zu note(s)\n",
                path.c_str(),
                report.count(analysis::Severity::Error),
                report.count(analysis::Severity::Warning),
                report.count(analysis::Severity::Note));
        }
        if (report.hasErrors() ||
            (werror && report.count(analysis::Severity::Warning) > 0))
            failed = true;
    }
    if (parse_failed)
        return 2;
    return failed ? 1 : 0;
}
