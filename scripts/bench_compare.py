#!/usr/bin/env python3
"""Gate per-benchmark regressions against the benchmark trajectory.

Usage: bench_compare.py TRAJECTORY [--threshold PCT]

Reads a savat-bench-trajectory-v1 file (BENCH_campaign.json, as
maintained by bench_append.py) and compares the newest entry against
the one before it, benchmark by benchmark. Any benchmark whose
real_time_ms grew by more than the threshold (default 10%) is a
regression and the script exits non-zero, so bench.sh can fail a PR
that slows the measurement hot path down.

Benchmarks present in only one of the two entries are reported but
never fatal: adding or retiring a benchmark is not a regression.
With fewer than two entries there is nothing to compare; the script
says so and exits 0 (the first recorded entry is the baseline).

The SAVAT_BENCH_TOLERANCE environment variable overrides the default
threshold (a percentage, e.g. SAVAT_BENCH_TOLERANCE=25). Shared CI
runners with one noisy CPU cannot hold the 10% band that a quiet
workstation can; the env override lets such environments widen the
gate without editing every caller. An explicit --threshold still
wins over the environment.
"""

import argparse
import json
import os
import sys

SCHEMA = "savat-bench-trajectory-v1"


def load_trajectory(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: expected schema {SCHEMA!r}, "
                 f"got {doc.get('schema')!r}")
    return doc.get("entries", [])


def main():
    ap = argparse.ArgumentParser(
        description="compare the two newest trajectory entries")
    ap.add_argument("trajectory")
    ap.add_argument("--threshold", type=float, default=None,
                    help="allowed real-time growth in percent "
                         "(default: $SAVAT_BENCH_TOLERANCE or 10)")
    args = ap.parse_args()
    if args.threshold is None:
        env = os.environ.get("SAVAT_BENCH_TOLERANCE", "")
        try:
            args.threshold = float(env) if env else 10.0
        except ValueError:
            sys.exit(f"error: SAVAT_BENCH_TOLERANCE={env!r} is not "
                     "a number (expected a percentage, e.g. 25)")
        if env:
            print("bench_compare: threshold "
                  f"+{args.threshold:.0f}% from SAVAT_BENCH_TOLERANCE")

    entries = load_trajectory(args.trajectory)
    if len(entries) < 2:
        print(f"bench_compare: {args.trajectory} has "
              f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}; "
              "nothing to compare (baseline run)")
        return 0

    prev, curr = entries[-2], entries[-1]
    print(f"bench_compare: '{curr['label']}' vs '{prev['label']}' "
          f"(threshold +{args.threshold:.0f}%)")

    limit = 1.0 + args.threshold / 100.0
    regressions = []
    shared = sorted(set(prev["benchmarks"]) & set(curr["benchmarks"]))
    for name in shared:
        old = prev["benchmarks"][name]["real_time_ms"]
        new = curr["benchmarks"][name]["real_time_ms"]
        if old <= 0.0:
            continue
        ratio = new / old
        verdict = "REGRESSION" if ratio > limit else "ok"
        print(f"  {verdict:>10}  {name}: {old:.4g} -> {new:.4g} ms "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
        if ratio > limit:
            regressions.append(name)

    for name in sorted(set(curr["benchmarks"]) - set(prev["benchmarks"])):
        print(f"       new   {name} (no baseline)")
    for name in sorted(set(prev["benchmarks"]) - set(curr["benchmarks"])):
        print(f"   retired   {name}")

    if regressions:
        print(f"bench_compare: {len(regressions)} benchmark(s) "
              f"regressed beyond +{args.threshold:.0f}%: "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    print(f"bench_compare: {len(shared)} shared benchmark(s) within "
          "budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
