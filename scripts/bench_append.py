#!/usr/bin/env python3
"""Append one google-benchmark run to the benchmark trajectory file.

Usage: bench_append.py TRAJECTORY RAW_JSON LABEL BUILD_TYPE

The trajectory (BENCH_campaign.json) is a list of per-PR entries
rather than a single snapshot, so per-cell cost regressions show up
as history, not as a silently replaced number:

    {
      "schema": "savat-bench-trajectory-v1",
      "entries": [
        {"label": ..., "date": ..., "build_type": ...,
         "context": {host google-benchmark context},
         "benchmarks": {"BM_CampaignPair": {"real_time_ms": ...,
                                            "cpu_time_ms": ...}, ...}}
      ]
    }

Re-running with an existing label replaces that entry in place (same
PR, fresher numbers); a new label appends. A legacy single-snapshot
file (raw google-benchmark output) is migrated by folding it in as
the entry labelled "legacy-snapshot".
"""

import json
import sys

SCHEMA = "savat-bench-trajectory-v1"

UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def to_entry(raw, label, build_type):
    unit_ms = lambda b: UNIT_TO_MS[b.get("time_unit", "ns")]
    benches = {
        b["name"]: {
            "real_time_ms": b["real_time"] * unit_ms(b),
            "cpu_time_ms": b["cpu_time"] * unit_ms(b),
        }
        for b in raw.get("benchmarks", [])
        if b.get("run_type", "iteration") == "iteration"
    }
    ctx = raw.get("context", {})
    return {
        "label": label,
        "date": ctx.get("date", ""),
        "build_type": build_type,
        "context": {
            k: ctx.get(k)
            for k in ("host_name", "num_cpus", "mhz_per_cpu", "load_avg")
            if k in ctx
        },
        "benchmarks": benches,
    }


def load_trajectory(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (FileNotFoundError, json.JSONDecodeError):
        return {"schema": SCHEMA, "entries": []}
    if isinstance(doc, dict) and doc.get("schema") == SCHEMA:
        return doc
    # Legacy single-snapshot google-benchmark file: keep its numbers
    # as the first trajectory entry instead of dropping them.
    if isinstance(doc, dict) and "benchmarks" in doc:
        entry = to_entry(doc, "legacy-snapshot", "unknown")
        return {"schema": SCHEMA, "entries": [entry]}
    return {"schema": SCHEMA, "entries": []}


def main():
    if len(sys.argv) != 5:
        sys.exit(__doc__.strip().splitlines()[2])
    out_path, raw_path, label, build_type = sys.argv[1:]

    with open(raw_path) as f:
        raw = json.load(f)
    entry = to_entry(raw, label, build_type)

    doc = load_trajectory(out_path)
    doc["entries"] = [e for e in doc["entries"] if e["label"] != label]
    doc["entries"].append(entry)

    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
