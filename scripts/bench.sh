#!/usr/bin/env bash
# Campaign-throughput benchmark runner: builds the tree and records
# the campaign microbenchmarks (single-cell cost, the jobs=1/2/4
# scaling curve and the per-stage pipeline costs) as google-benchmark
# JSON, plus the obs metrics of a small reference campaign alongside
# it.
#
#   scripts/bench.sh [output.json]    # default: BENCH_campaign.json
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_campaign.json}"

cmake -B build -S . >/dev/null
cmake --build build -j --target bench_perf_substrate savat_cli

./build/bench/bench_perf_substrate \
    --benchmark_filter='BM_Campaign|BM_PipelineStage|BM_AnalyzeKernel' \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_format=console

# Pipeline-internal counters for the same workload class: cache hit
# rates, FFT volume, per-cell timing distributions.
METRICS="${OUT%.json}_metrics.json"
./build/examples/savat_cli campaign ADD SUB LDM --reps 3 --jobs 2 \
    --metrics "$METRICS" >/dev/null

echo
echo "wrote $OUT and $METRICS"
