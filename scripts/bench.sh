#!/usr/bin/env bash
# Campaign-throughput benchmark runner: records the campaign
# microbenchmarks (single-cell cost, the jobs=1/2/4 scaling curve and
# the per-stage pipeline costs) and appends them as one entry to the
# checked-in trajectory file, so BENCH_campaign.json accumulates a
# per-PR performance history instead of being overwritten each run.
#
#   scripts/bench.sh [trajectory.json]   # default: BENCH_campaign.json
#
# Environment:
#   SAVAT_BENCH_BUILD   build directory (default: build-rel)
#   SAVAT_BENCH_LABEL   entry label (default: short git revision)
#
# Timings are only meaningful from an optimized build: the runner
# configures its own Release build tree and refuses to record numbers
# from anything other than Release / RelWithDebInfo.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_campaign.json}"
BUILD="${SAVAT_BENCH_BUILD:-build-rel}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
case "$BUILD_TYPE" in
  Release|RelWithDebInfo) ;;
  *)
    echo "error: $BUILD is configured as '${BUILD_TYPE:-<unset>}';" >&2
    echo "benchmark numbers from unoptimized builds are meaningless." >&2
    echo "Reconfigure with -DCMAKE_BUILD_TYPE=Release (or point" >&2
    echo "SAVAT_BENCH_BUILD at a Release tree) and re-run." >&2
    exit 1
    ;;
esac

cmake --build "$BUILD" -j --target bench_perf_substrate savat_cli

RAW="$(mktemp --suffix=.json)"
trap 'rm -f "$RAW"' EXIT

"./$BUILD/bench/bench_perf_substrate" \
    --benchmark_filter='BM_Campaign|BM_PipelineStage|BM_AnalyzeKernel|BM_TimingChain' \
    --benchmark_out="$RAW" \
    --benchmark_out_format=json \
    --benchmark_format=console

# Pipeline-internal counters for the same workload class: cache hit
# rates, FFT volume, per-cell timing distributions.
METRICS="${OUT%.json}_metrics.json"
"./$BUILD/examples/savat_cli" campaign ADD SUB LDM --reps 3 --jobs 2 \
    --metrics "$METRICS" >/dev/null

LABEL="${SAVAT_BENCH_LABEL:-$(git rev-parse --short HEAD 2>/dev/null ||
                              echo local)}"
python3 scripts/bench_append.py "$OUT" "$RAW" "$LABEL" "$BUILD_TYPE"

echo
echo "appended entry '$LABEL' to $OUT (metrics in $METRICS)"

# Regression gate: the entry just appended must stay within 10% of
# the previous one, benchmark by benchmark. Exits non-zero (and so
# fails the run) on any real-time regression beyond the budget.
# Noisy shared runners can widen the band with SAVAT_BENCH_TOLERANCE
# (a percentage) instead of editing the gate.
python3 scripts/bench_compare.py "$OUT"
