#!/usr/bin/env bash
# Single local/CI entry point: tier-1 build+test, the ASan+UBSan
# build+test, savat-lint over every example campaign spec, and (when
# installed) clang-tidy over the library sources.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

step() { printf '\n== %s ==\n' "$*"; }

step "tier-1: configure + build + ctest"
cmake -B build -S . -DSAVAT_WERROR=ON >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

step "savat-lint: example campaign specs"
./build/examples/savat_lint --summary examples/specs/*.spec

step "analyzer gate: no SAV-D/SAV-P finding in any example spec"
# The dataflow analyzer runs inside savat_lint; the JSON document
# makes "zero findings of the kernel-analysis namespaces" checkable
# without parsing the human-readable output.
./build/examples/savat_lint --werror --format=json \
    examples/specs/*.spec > build/lint.json
if grep -Eq '"id": *"SAV-[DP]0' build/lint.json; then
    echo "analyzer findings in shipped specs:"
    grep -Eo '"id": *"SAV-[DP]0[0-9]+"' build/lint.json | sort | uniq -c
    exit 1
fi
python3 -m json.tool build/lint.json >/dev/null
echo "lint JSON OK, no analyzer findings"

step "obs smoke: campaign telemetry export parses as JSON"
mkdir -p build/obs-smoke
./build/examples/savat_cli campaign ADD LDM --reps 2 --jobs 4 \
    --metrics build/obs-smoke/metrics.json \
    --trace build/obs-smoke/trace.json >/dev/null
python3 -m json.tool build/obs-smoke/metrics.json >/dev/null
python3 -m json.tool build/obs-smoke/trace.json >/dev/null
echo "metrics + trace JSON OK"

if [[ "$FAST" == 1 ]]; then
    echo "--fast: skipping golden gate, sanitizers and clang-tidy"
    exit 0
fi

step "golden matrix: EM chain bit-identity vs checked-in fixture"
./build/tests/test_pipeline --gtest_filter='GoldenMatrix.*'

step "speculation gate: spec-off campaign bytes vs golden fixture"
# The staged-core refactor must be invisible with speculation off:
# the default (window 0) EM campaign lands byte-for-byte on the same
# golden fixture, serial and parallel.
SPEC_DIR=build/spec-gate
rm -rf "$SPEC_DIR" && mkdir -p "$SPEC_DIR"
for jobs in 1 4; do
    ./build/examples/savat_cli campaign --reps 2 --jobs "$jobs" \
        --fixture "$SPEC_DIR/specoff_j${jobs}.fixture" >/dev/null
    cmp tests/data/golden_em_core2duo.fixture \
        "$SPEC_DIR/specoff_j${jobs}.fixture" ||
        { echo "spec-off --jobs $jobs diverges from golden"; exit 1; }
done
echo "spec-off campaign byte-identical to golden (jobs 1 and 4)"

step "timing-matrix smoke: transient pair over the software channel"
# The prime+probe attacker must be deterministic across job counts
# and must actually see the wrong-path fills: the TLD/TLF cell sits
# well above both diagonal floor cells.
for jobs in 1 4; do
    ./build/examples/savat_cli campaign TLD TLF \
        --channel timing --speculation 32 --reps 2 --jobs "$jobs" \
        --csv "$SPEC_DIR/timing_j${jobs}.csv" >/dev/null
done
cmp "$SPEC_DIR/timing_j1.csv" "$SPEC_DIR/timing_j4.csv" ||
    { echo "--channel timing diverges between jobs 1 and 4"; exit 1; }
python3 - "$SPEC_DIR/timing_j1.csv" <<'EOF'
import csv, sys
cells = {(r["a"], r["b"]): float(r["mean_zj"])
         for r in csv.DictReader(open(sys.argv[1]))}
ab = cells[("TLD", "TLF")]
floor = max(cells[("TLD", "TLD")], cells[("TLF", "TLF")])
print(f"timing TLD/TLF {ab:.1f} zJ vs diagonal floor {floor:.1f} zJ")
if not ab > 2.0 * floor:
    sys.exit("transient pair does not separate from the floor")
EOF

step "simd gate: campaign bytes identical across dispatch targets"
# The fixed-reduction-tree contract (DESIGN.md §5h) says every SIMD
# dispatch level produces bit-identical campaigns at every job count.
# Run the reference campaign under each target this host supports, at
# jobs 1 and 4, and diff the fixture bytes against the golden copy.
SIMD_DIR=build/simd-gate
rm -rf "$SIMD_DIR" && mkdir -p "$SIMD_DIR"
SIMD_LEVELS="scalar"
grep -qw sse2 /proc/cpuinfo && SIMD_LEVELS="$SIMD_LEVELS sse2"
grep -qw avx2 /proc/cpuinfo && SIMD_LEVELS="$SIMD_LEVELS avx2"
for simd in $SIMD_LEVELS; do
    for jobs in 1 4; do
        out="$SIMD_DIR/${simd}_j${jobs}.fixture"
        SAVAT_SIMD="$simd" ./build/examples/savat_cli campaign \
            --reps 2 --jobs "$jobs" --fixture "$out" >/dev/null
        cmp tests/data/golden_em_core2duo.fixture "$out" ||
            { echo "SAVAT_SIMD=$simd --jobs $jobs diverges from golden"; exit 1; }
    done
done
echo "byte-identical across: $SIMD_LEVELS (jobs 1 and 4)"

step "crash-resume: kill -9 mid-campaign, resume, diff vs golden"
RESUME_DIR=build/resume-gate
rm -rf "$RESUME_DIR" && mkdir -p "$RESUME_DIR"
# die@40 checkpoints and then _Exit(137)s after the 41st pair -- the
# faithful analog of kill -9. The resumed run must land byte-for-byte
# on the checked-in golden fixture.
set +e
./build/examples/savat_cli campaign --reps 2 --jobs 4 \
    --checkpoint "$RESUME_DIR/campaign.ckpt" --checkpoint-every 5 \
    --fault-plan die@40 >/dev/null 2>&1
DIE_STATUS=$?
set -e
[[ "$DIE_STATUS" == 137 ]] ||
    { echo "expected the injected kill to exit 137, got $DIE_STATUS"; exit 1; }
./build/examples/savat_cli campaign --reps 2 --jobs 4 \
    --resume "$RESUME_DIR/campaign.ckpt" \
    --fixture "$RESUME_DIR/resumed.fixture" >/dev/null
cmp tests/data/golden_em_core2duo.fixture "$RESUME_DIR/resumed.fixture"
echo "resumed campaign is byte-identical to the golden fixture"

step "crash isolation: worker deaths under --isolate procs vs golden"
ISO_DIR=build/isolate-gate
rm -rf "$ISO_DIR" && mkdir -p "$ISO_DIR"
# Deterministic kill: under --isolate procs the die@40 rule routes
# through the worker (it _Exits(137) before reporting the cell), so
# the supervisor must restart it and the campaign must complete with
# exit 0, byte-identical to the golden fixture at both worker counts.
for workers in 1 4; do
    ./build/examples/savat_cli campaign --reps 2 \
        --isolate procs --workers "$workers" --fault-plan die@40 \
        --journal "$ISO_DIR/die_w${workers}.jsonl" \
        --fixture "$ISO_DIR/die_w${workers}.fixture" >/dev/null 2>&1
    cmp tests/data/golden_em_core2duo.fixture \
        "$ISO_DIR/die_w${workers}.fixture" ||
        { echo "--isolate procs --workers $workers diverges after a worker death"; exit 1; }
done
grep -q '"event":"worker-died"' "$ISO_DIR/die_w4.jsonl" &&
    grep -q '"event":"worker-restarted"' "$ISO_DIR/die_w4.jsonl" ||
    { echo "journal lacks the worker-died/restarted records"; exit 1; }
echo "killed worker recovered byte-identically (workers 1 and 4)"

# Quarantine: die@40:always kills every worker dispatched the cell,
# exhausting its crash budget -> exit 3, one Degraded cell, the rest
# of the matrix intact. The report must tell that story, and a clean
# resume from the quarantined run's checkpoint must land on golden.
set +e
./build/examples/savat_cli campaign --reps 2 \
    --isolate procs --workers 4 --fault-plan die@40:always \
    --checkpoint "$ISO_DIR/quarantine.ckpt" --checkpoint-every 5 \
    --journal "$ISO_DIR/quarantine.jsonl" >/dev/null 2>&1
Q_STATUS=$?
set -e
[[ "$Q_STATUS" == 3 ]] ||
    { echo "expected the quarantined campaign to exit 3, got $Q_STATUS"; exit 1; }
grep -q '"event":"cell-quarantined"' "$ISO_DIR/quarantine.jsonl" ||
    { echo "journal lacks the cell-quarantined record"; exit 1; }
./build/examples/savat_cli report "$ISO_DIR/quarantine.jsonl" \
    > "$ISO_DIR/quarantine_report.txt"
grep -q 'worker events' "$ISO_DIR/quarantine_report.txt" &&
    grep -q 'quarantined' "$ISO_DIR/quarantine_report.txt" ||
    { echo "report does not surface the worker-death story"; exit 1; }
./build/examples/savat_cli campaign --reps 2 \
    --isolate procs --workers 4 \
    --resume "$ISO_DIR/quarantine.ckpt" \
    --fixture "$ISO_DIR/quarantine_resumed.fixture" >/dev/null
cmp tests/data/golden_em_core2duo.fixture \
    "$ISO_DIR/quarantine_resumed.fixture" ||
    { echo "resume past the quarantined cell diverges from golden"; exit 1; }
echo "quarantine surfaced in the report; resume byte-identical to golden"

# External kill: SIGKILL a live worker of a running campaign -- the
# unplanned analog of the deterministic gates above. The crash budget
# (3) absorbs one murder, so the run must still exit 0 on the golden
# bytes; a checkpoint covers the (theoretical) quarantine path.
./build/examples/savat_cli campaign --reps 2 \
    --isolate procs --workers 4 \
    --checkpoint "$ISO_DIR/murder.ckpt" --checkpoint-every 5 \
    --fixture "$ISO_DIR/murder.fixture" >/dev/null 2>&1 &
CAMPAIGN_PID=$!
VICTIM=""
for _ in $(seq 100); do
    VICTIM="$(pgrep -P "$CAMPAIGN_PID" | head -1)" &&
        [[ -n "$VICTIM" ]] && break
    sleep 0.1
done
[[ -n "$VICTIM" ]] ||
    { echo "no worker process appeared to kill"; exit 1; }
sleep 0.5 # let the victim take a cell in flight
kill -9 "$VICTIM" 2>/dev/null || true
set +e
wait "$CAMPAIGN_PID"
MURDER_STATUS=$?
set -e
if [[ "$MURDER_STATUS" == 3 ]]; then
    # Quarantined the in-flight cell: resume must recover golden.
    ./build/examples/savat_cli campaign --reps 2 \
        --isolate procs --workers 4 \
        --resume "$ISO_DIR/murder.ckpt" \
        --fixture "$ISO_DIR/murder.fixture" >/dev/null
elif [[ "$MURDER_STATUS" != 0 ]]; then
    echo "campaign with a murdered worker exited $MURDER_STATUS"
    exit 1
fi
cmp tests/data/golden_em_core2duo.fixture "$ISO_DIR/murder.fixture" ||
    { echo "campaign with a murdered worker diverges from golden"; exit 1; }
echo "SIGKILLed worker absorbed (exit $MURDER_STATUS); bytes match golden"

step "journal gate: bit-identity with journaling on + report sanity"
JOURNAL_DIR=build/journal-gate
rm -rf "$JOURNAL_DIR" && mkdir -p "$JOURNAL_DIR"
# The run journal must never perturb the campaign: the full matrix
# with --journal --metrics --trace on must stay byte-identical to
# the golden fixture at jobs 1 and 4.
for jobs in 1 4; do
    ./build/examples/savat_cli campaign --reps 2 --jobs "$jobs" \
        --journal "$JOURNAL_DIR/j${jobs}.jsonl" \
        --metrics "$JOURNAL_DIR/m${jobs}.json" \
        --trace "$JOURNAL_DIR/t${jobs}.json" \
        --fixture "$JOURNAL_DIR/j${jobs}.fixture" >/dev/null
    cmp tests/data/golden_em_core2duo.fixture \
        "$JOURNAL_DIR/j${jobs}.fixture" ||
        { echo "--journal --jobs $jobs diverges from golden"; exit 1; }
done
grep -q '"schema":"savat-run-journal-v1"' "$JOURNAL_DIR/j1.jsonl" ||
    { echo "journal run-start lacks the v1 schema tag"; exit 1; }
./build/examples/savat_cli report "$JOURNAL_DIR/j1.jsonl" \
    > "$JOURNAL_DIR/report.txt"
grep -q 'stage coverage' "$JOURNAL_DIR/report.txt" ||
    { echo "report omits the stage-coverage line"; exit 1; }
./build/examples/savat_cli report --format=json \
    "$JOURNAL_DIR/j1.jsonl" > "$JOURNAL_DIR/report.json"
python3 -m json.tool "$JOURNAL_DIR/report.json" >/dev/null
grep -q '"schema": *"savat-run-report-v1"' "$JOURNAL_DIR/report.json" ||
    { echo "report JSON lacks the v1 schema tag"; exit 1; }
# Serial runs attribute (nearly) all wall time to stages; parallel
# runs legitimately sum concurrent worker walls past 100%, so the
# coverage band is asserted at jobs 1 only.
python3 - "$JOURNAL_DIR/report.json" <<'EOF'
import json, sys
share = json.load(open(sys.argv[1]))["coverage"]["share"]
print(f"jobs-1 stage coverage share: {share:.3f}")
if not 0.80 <= share <= 1.10:
    sys.exit(f"coverage share {share:.3f} outside the [0.80, 1.10] band")
EOF
if command -v curl >/dev/null 2>&1; then
    ./build/examples/savat_cli report --serve 0 \
        "$JOURNAL_DIR/j1.jsonl" > "$JOURNAL_DIR/serve.log" 2>&1 &
    SERVE_PID=$!
    PORT=""
    for _ in $(seq 50); do
        PORT="$(grep -o 'port=[0-9]*' "$JOURNAL_DIR/serve.log" |
                head -1 | cut -d= -f2)" && [[ -n "$PORT" ]] && break
        sleep 0.1
    done
    [[ -n "$PORT" ]] || { echo "report --serve never printed a port"; exit 1; }
    # curl to files, not pipes: grep -q closing the pipe early
    # would EPIPE curl and trip pipefail on a healthy response.
    curl -sf -o "$JOURNAL_DIR/prom.txt" \
        "http://127.0.0.1:$PORT/metrics" &&
        grep -q '^savat_' "$JOURNAL_DIR/prom.txt" ||
        { echo "/metrics is not Prometheus text"; kill "$SERVE_PID"; exit 1; }
    curl -sf -o "$JOURNAL_DIR/prom.json" \
        "http://127.0.0.1:$PORT/metrics.json" &&
        python3 -m json.tool "$JOURNAL_DIR/prom.json" >/dev/null ||
        { echo "/metrics.json is not JSON"; kill "$SERVE_PID"; exit 1; }
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    echo "report --serve smoke OK (port $PORT)"
else
    echo "curl not installed; skipping the --serve smoke"
fi
echo "journal gate OK"

step "sanitizers: ASan+UBSan build + ctest"
cmake -B build-asan -S . -DSAVAT_SANITIZE=ON -DSAVAT_WERROR=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j "$(nproc)")

step "fault-injection smoke under ASan: nan@every:5 completes clean"
# Injected NaNs must be contained and retried away: the campaign
# completes the full matrix (exit 0, no degraded cells) with the
# sanitizers watching the containment path.
./build-asan/examples/savat_cli campaign --reps 2 --jobs 4 \
    --fault-plan nan@every:5 >/dev/null
echo "fault-injection smoke OK"

step "sanitizers: TSan build + parallel/campaign tests"
cmake -B build-tsan -S . -DSAVAT_TSAN=ON -DSAVAT_WERROR=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j
# The pipeline and resilience suites join the TSan pass except
# GoldenMatrix / CheckpointResumeGolden / ServiceGoldenCampaign
# (full 11x11 campaigns -- far too slow under TSan; the plain
# build's ctest already runs them). ServiceWire/ServicePool run the
# supervisor + forked-worker machinery under TSan (the fork happens
# on a single-threaded parent, so child-side threads are safe).
(cd build-tsan &&
     ctest --output-on-failure -j "$(nproc)" \
           -R 'Parallel|CampaignVariants|MachineCampaign|Obs|PowerChain|Replay\.RecordReplayRoundTrip|Resilience|MutationCorpus|IrPasses|JournalRoundTrip|JournalReport|UarchSpec|TimingChain|ServiceWire|ServicePool')

if command -v clang-tidy >/dev/null 2>&1; then
    step "clang-tidy: library sources"
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    find src -name '*.cc' -print0 |
        xargs -0 clang-tidy -p build --quiet
else
    echo "clang-tidy not installed; skipping"
fi

echo
echo "all checks passed"
