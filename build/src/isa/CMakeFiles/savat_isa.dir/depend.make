# Empty dependencies file for savat_isa.
# This may be replaced when dependencies are built.
