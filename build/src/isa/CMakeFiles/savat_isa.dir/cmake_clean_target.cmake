file(REMOVE_RECURSE
  "libsavat_isa.a"
)
