file(REMOVE_RECURSE
  "CMakeFiles/savat_isa.dir/assembler.cc.o"
  "CMakeFiles/savat_isa.dir/assembler.cc.o.d"
  "CMakeFiles/savat_isa.dir/instruction.cc.o"
  "CMakeFiles/savat_isa.dir/instruction.cc.o.d"
  "libsavat_isa.a"
  "libsavat_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
