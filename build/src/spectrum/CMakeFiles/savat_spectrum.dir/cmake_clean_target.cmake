file(REMOVE_RECURSE
  "libsavat_spectrum.a"
)
