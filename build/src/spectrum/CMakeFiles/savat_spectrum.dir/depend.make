# Empty dependencies file for savat_spectrum.
# This may be replaced when dependencies are built.
