file(REMOVE_RECURSE
  "CMakeFiles/savat_spectrum.dir/analyzer.cc.o"
  "CMakeFiles/savat_spectrum.dir/analyzer.cc.o.d"
  "libsavat_spectrum.a"
  "libsavat_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
