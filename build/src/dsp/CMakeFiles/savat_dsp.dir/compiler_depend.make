# Empty compiler generated dependencies file for savat_dsp.
# This may be replaced when dependencies are built.
