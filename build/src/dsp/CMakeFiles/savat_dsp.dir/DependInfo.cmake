
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cc" "src/dsp/CMakeFiles/savat_dsp.dir/fft.cc.o" "gcc" "src/dsp/CMakeFiles/savat_dsp.dir/fft.cc.o.d"
  "/root/repo/src/dsp/psd.cc" "src/dsp/CMakeFiles/savat_dsp.dir/psd.cc.o" "gcc" "src/dsp/CMakeFiles/savat_dsp.dir/psd.cc.o.d"
  "/root/repo/src/dsp/window.cc" "src/dsp/CMakeFiles/savat_dsp.dir/window.cc.o" "gcc" "src/dsp/CMakeFiles/savat_dsp.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/savat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
