file(REMOVE_RECURSE
  "libsavat_dsp.a"
)
