file(REMOVE_RECURSE
  "CMakeFiles/savat_dsp.dir/fft.cc.o"
  "CMakeFiles/savat_dsp.dir/fft.cc.o.d"
  "CMakeFiles/savat_dsp.dir/psd.cc.o"
  "CMakeFiles/savat_dsp.dir/psd.cc.o.d"
  "CMakeFiles/savat_dsp.dir/window.cc.o"
  "CMakeFiles/savat_dsp.dir/window.cc.o.d"
  "libsavat_dsp.a"
  "libsavat_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
