file(REMOVE_RECURSE
  "libsavat_uarch.a"
)
