file(REMOVE_RECURSE
  "CMakeFiles/savat_uarch.dir/activity.cc.o"
  "CMakeFiles/savat_uarch.dir/activity.cc.o.d"
  "CMakeFiles/savat_uarch.dir/cache.cc.o"
  "CMakeFiles/savat_uarch.dir/cache.cc.o.d"
  "CMakeFiles/savat_uarch.dir/cpu.cc.o"
  "CMakeFiles/savat_uarch.dir/cpu.cc.o.d"
  "CMakeFiles/savat_uarch.dir/machine.cc.o"
  "CMakeFiles/savat_uarch.dir/machine.cc.o.d"
  "CMakeFiles/savat_uarch.dir/memory.cc.o"
  "CMakeFiles/savat_uarch.dir/memory.cc.o.d"
  "libsavat_uarch.a"
  "libsavat_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
