
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/activity.cc" "src/uarch/CMakeFiles/savat_uarch.dir/activity.cc.o" "gcc" "src/uarch/CMakeFiles/savat_uarch.dir/activity.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/uarch/CMakeFiles/savat_uarch.dir/cache.cc.o" "gcc" "src/uarch/CMakeFiles/savat_uarch.dir/cache.cc.o.d"
  "/root/repo/src/uarch/cpu.cc" "src/uarch/CMakeFiles/savat_uarch.dir/cpu.cc.o" "gcc" "src/uarch/CMakeFiles/savat_uarch.dir/cpu.cc.o.d"
  "/root/repo/src/uarch/machine.cc" "src/uarch/CMakeFiles/savat_uarch.dir/machine.cc.o" "gcc" "src/uarch/CMakeFiles/savat_uarch.dir/machine.cc.o.d"
  "/root/repo/src/uarch/memory.cc" "src/uarch/CMakeFiles/savat_uarch.dir/memory.cc.o" "gcc" "src/uarch/CMakeFiles/savat_uarch.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/savat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/savat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
