# Empty dependencies file for savat_uarch.
# This may be replaced when dependencies are built.
