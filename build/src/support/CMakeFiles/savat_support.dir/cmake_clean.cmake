file(REMOVE_RECURSE
  "CMakeFiles/savat_support.dir/logging.cc.o"
  "CMakeFiles/savat_support.dir/logging.cc.o.d"
  "CMakeFiles/savat_support.dir/rng.cc.o"
  "CMakeFiles/savat_support.dir/rng.cc.o.d"
  "CMakeFiles/savat_support.dir/stats.cc.o"
  "CMakeFiles/savat_support.dir/stats.cc.o.d"
  "CMakeFiles/savat_support.dir/strings.cc.o"
  "CMakeFiles/savat_support.dir/strings.cc.o.d"
  "CMakeFiles/savat_support.dir/table.cc.o"
  "CMakeFiles/savat_support.dir/table.cc.o.d"
  "libsavat_support.a"
  "libsavat_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
