# Empty dependencies file for savat_support.
# This may be replaced when dependencies are built.
