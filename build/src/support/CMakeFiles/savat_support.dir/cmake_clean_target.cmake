file(REMOVE_RECURSE
  "libsavat_support.a"
)
