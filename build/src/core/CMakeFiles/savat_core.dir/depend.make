# Empty dependencies file for savat_core.
# This may be replaced when dependencies are built.
