file(REMOVE_RECURSE
  "libsavat_core.a"
)
