file(REMOVE_RECURSE
  "CMakeFiles/savat_core.dir/assessment.cc.o"
  "CMakeFiles/savat_core.dir/assessment.cc.o.d"
  "CMakeFiles/savat_core.dir/campaign.cc.o"
  "CMakeFiles/savat_core.dir/campaign.cc.o.d"
  "CMakeFiles/savat_core.dir/clustering.cc.o"
  "CMakeFiles/savat_core.dir/clustering.cc.o.d"
  "CMakeFiles/savat_core.dir/detection.cc.o"
  "CMakeFiles/savat_core.dir/detection.cc.o.d"
  "CMakeFiles/savat_core.dir/matrix.cc.o"
  "CMakeFiles/savat_core.dir/matrix.cc.o.d"
  "CMakeFiles/savat_core.dir/meter.cc.o"
  "CMakeFiles/savat_core.dir/meter.cc.o.d"
  "CMakeFiles/savat_core.dir/naive.cc.o"
  "CMakeFiles/savat_core.dir/naive.cc.o.d"
  "CMakeFiles/savat_core.dir/reference.cc.o"
  "CMakeFiles/savat_core.dir/reference.cc.o.d"
  "CMakeFiles/savat_core.dir/report.cc.o"
  "CMakeFiles/savat_core.dir/report.cc.o.d"
  "CMakeFiles/savat_core.dir/svf.cc.o"
  "CMakeFiles/savat_core.dir/svf.cc.o.d"
  "libsavat_core.a"
  "libsavat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
