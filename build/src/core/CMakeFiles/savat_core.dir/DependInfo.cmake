
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assessment.cc" "src/core/CMakeFiles/savat_core.dir/assessment.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/assessment.cc.o.d"
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/savat_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/clustering.cc" "src/core/CMakeFiles/savat_core.dir/clustering.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/clustering.cc.o.d"
  "/root/repo/src/core/detection.cc" "src/core/CMakeFiles/savat_core.dir/detection.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/detection.cc.o.d"
  "/root/repo/src/core/matrix.cc" "src/core/CMakeFiles/savat_core.dir/matrix.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/matrix.cc.o.d"
  "/root/repo/src/core/meter.cc" "src/core/CMakeFiles/savat_core.dir/meter.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/meter.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/core/CMakeFiles/savat_core.dir/naive.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/naive.cc.o.d"
  "/root/repo/src/core/reference.cc" "src/core/CMakeFiles/savat_core.dir/reference.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/reference.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/savat_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/report.cc.o.d"
  "/root/repo/src/core/svf.cc" "src/core/CMakeFiles/savat_core.dir/svf.cc.o" "gcc" "src/core/CMakeFiles/savat_core.dir/svf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/savat_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrum/CMakeFiles/savat_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/savat_em.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/savat_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/savat_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/savat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/savat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
