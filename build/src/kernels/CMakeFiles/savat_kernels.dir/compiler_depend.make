# Empty compiler generated dependencies file for savat_kernels.
# This may be replaced when dependencies are built.
