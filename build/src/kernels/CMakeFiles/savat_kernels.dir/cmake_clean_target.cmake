file(REMOVE_RECURSE
  "libsavat_kernels.a"
)
