
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/events.cc" "src/kernels/CMakeFiles/savat_kernels.dir/events.cc.o" "gcc" "src/kernels/CMakeFiles/savat_kernels.dir/events.cc.o.d"
  "/root/repo/src/kernels/generator.cc" "src/kernels/CMakeFiles/savat_kernels.dir/generator.cc.o" "gcc" "src/kernels/CMakeFiles/savat_kernels.dir/generator.cc.o.d"
  "/root/repo/src/kernels/sequence.cc" "src/kernels/CMakeFiles/savat_kernels.dir/sequence.cc.o" "gcc" "src/kernels/CMakeFiles/savat_kernels.dir/sequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/savat_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/savat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/savat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
