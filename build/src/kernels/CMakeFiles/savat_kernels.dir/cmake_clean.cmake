file(REMOVE_RECURSE
  "CMakeFiles/savat_kernels.dir/events.cc.o"
  "CMakeFiles/savat_kernels.dir/events.cc.o.d"
  "CMakeFiles/savat_kernels.dir/generator.cc.o"
  "CMakeFiles/savat_kernels.dir/generator.cc.o.d"
  "CMakeFiles/savat_kernels.dir/sequence.cc.o"
  "CMakeFiles/savat_kernels.dir/sequence.cc.o.d"
  "libsavat_kernels.a"
  "libsavat_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
