
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/antenna.cc" "src/em/CMakeFiles/savat_em.dir/antenna.cc.o" "gcc" "src/em/CMakeFiles/savat_em.dir/antenna.cc.o.d"
  "/root/repo/src/em/channels.cc" "src/em/CMakeFiles/savat_em.dir/channels.cc.o" "gcc" "src/em/CMakeFiles/savat_em.dir/channels.cc.o.d"
  "/root/repo/src/em/emission.cc" "src/em/CMakeFiles/savat_em.dir/emission.cc.o" "gcc" "src/em/CMakeFiles/savat_em.dir/emission.cc.o.d"
  "/root/repo/src/em/environment.cc" "src/em/CMakeFiles/savat_em.dir/environment.cc.o" "gcc" "src/em/CMakeFiles/savat_em.dir/environment.cc.o.d"
  "/root/repo/src/em/narrowband.cc" "src/em/CMakeFiles/savat_em.dir/narrowband.cc.o" "gcc" "src/em/CMakeFiles/savat_em.dir/narrowband.cc.o.d"
  "/root/repo/src/em/propagation.cc" "src/em/CMakeFiles/savat_em.dir/propagation.cc.o" "gcc" "src/em/CMakeFiles/savat_em.dir/propagation.cc.o.d"
  "/root/repo/src/em/synth.cc" "src/em/CMakeFiles/savat_em.dir/synth.cc.o" "gcc" "src/em/CMakeFiles/savat_em.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/savat_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/savat_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/savat_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
