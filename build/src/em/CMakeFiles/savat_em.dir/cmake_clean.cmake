file(REMOVE_RECURSE
  "CMakeFiles/savat_em.dir/antenna.cc.o"
  "CMakeFiles/savat_em.dir/antenna.cc.o.d"
  "CMakeFiles/savat_em.dir/channels.cc.o"
  "CMakeFiles/savat_em.dir/channels.cc.o.d"
  "CMakeFiles/savat_em.dir/emission.cc.o"
  "CMakeFiles/savat_em.dir/emission.cc.o.d"
  "CMakeFiles/savat_em.dir/environment.cc.o"
  "CMakeFiles/savat_em.dir/environment.cc.o.d"
  "CMakeFiles/savat_em.dir/narrowband.cc.o"
  "CMakeFiles/savat_em.dir/narrowband.cc.o.d"
  "CMakeFiles/savat_em.dir/propagation.cc.o"
  "CMakeFiles/savat_em.dir/propagation.cc.o.d"
  "CMakeFiles/savat_em.dir/synth.cc.o"
  "CMakeFiles/savat_em.dir/synth.cc.o.d"
  "libsavat_em.a"
  "libsavat_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
