# Empty dependencies file for savat_em.
# This may be replaced when dependencies are built.
