file(REMOVE_RECURSE
  "libsavat_em.a"
)
