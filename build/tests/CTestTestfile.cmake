# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_memory[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_cache[1]_include.cmake")
include("/root/repo/build/tests/test_uarch_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_em[1]_include.cmake")
include("/root/repo/build/tests/test_spectrum[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_core_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_core_meter[1]_include.cmake")
include("/root/repo/build/tests/test_core_naive[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_core_svf_assessment[1]_include.cmake")
include("/root/repo/build/tests/test_campaign_variants[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_detection[1]_include.cmake")
