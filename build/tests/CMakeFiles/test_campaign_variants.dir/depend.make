# Empty dependencies file for test_campaign_variants.
# This may be replaced when dependencies are built.
