file(REMOVE_RECURSE
  "CMakeFiles/test_campaign_variants.dir/test_campaign_variants.cc.o"
  "CMakeFiles/test_campaign_variants.dir/test_campaign_variants.cc.o.d"
  "test_campaign_variants"
  "test_campaign_variants.pdb"
  "test_campaign_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_campaign_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
