file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_cpu.dir/test_uarch_cpu.cc.o"
  "CMakeFiles/test_uarch_cpu.dir/test_uarch_cpu.cc.o.d"
  "test_uarch_cpu"
  "test_uarch_cpu.pdb"
  "test_uarch_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
