# Empty compiler generated dependencies file for test_uarch_cpu.
# This may be replaced when dependencies are built.
