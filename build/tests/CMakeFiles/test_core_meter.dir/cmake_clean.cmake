file(REMOVE_RECURSE
  "CMakeFiles/test_core_meter.dir/test_core_meter.cc.o"
  "CMakeFiles/test_core_meter.dir/test_core_meter.cc.o.d"
  "test_core_meter"
  "test_core_meter.pdb"
  "test_core_meter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
