# Empty compiler generated dependencies file for test_core_meter.
# This may be replaced when dependencies are built.
