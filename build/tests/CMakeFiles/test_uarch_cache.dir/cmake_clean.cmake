file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_cache.dir/test_uarch_cache.cc.o"
  "CMakeFiles/test_uarch_cache.dir/test_uarch_cache.cc.o.d"
  "test_uarch_cache"
  "test_uarch_cache.pdb"
  "test_uarch_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
