file(REMOVE_RECURSE
  "CMakeFiles/test_core_matrix.dir/test_core_matrix.cc.o"
  "CMakeFiles/test_core_matrix.dir/test_core_matrix.cc.o.d"
  "test_core_matrix"
  "test_core_matrix.pdb"
  "test_core_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
