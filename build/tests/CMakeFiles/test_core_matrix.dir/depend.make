# Empty dependencies file for test_core_matrix.
# This may be replaced when dependencies are built.
