file(REMOVE_RECURSE
  "CMakeFiles/test_core_naive.dir/test_core_naive.cc.o"
  "CMakeFiles/test_core_naive.dir/test_core_naive.cc.o.d"
  "test_core_naive"
  "test_core_naive.pdb"
  "test_core_naive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
