# Empty dependencies file for test_core_naive.
# This may be replaced when dependencies are built.
