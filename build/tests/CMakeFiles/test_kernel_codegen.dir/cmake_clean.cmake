file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_codegen.dir/test_kernel_codegen.cc.o"
  "CMakeFiles/test_kernel_codegen.dir/test_kernel_codegen.cc.o.d"
  "test_kernel_codegen"
  "test_kernel_codegen.pdb"
  "test_kernel_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
