file(REMOVE_RECURSE
  "CMakeFiles/test_core_svf_assessment.dir/test_core_svf_assessment.cc.o"
  "CMakeFiles/test_core_svf_assessment.dir/test_core_svf_assessment.cc.o.d"
  "test_core_svf_assessment"
  "test_core_svf_assessment.pdb"
  "test_core_svf_assessment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_svf_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
