# Empty compiler generated dependencies file for test_core_svf_assessment.
# This may be replaced when dependencies are built.
