file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_memory.dir/test_uarch_memory.cc.o"
  "CMakeFiles/test_uarch_memory.dir/test_uarch_memory.cc.o.d"
  "test_uarch_memory"
  "test_uarch_memory.pdb"
  "test_uarch_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
