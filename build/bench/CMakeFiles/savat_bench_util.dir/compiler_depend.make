# Empty compiler generated dependencies file for savat_bench_util.
# This may be replaced when dependencies are built.
