file(REMOVE_RECURSE
  "CMakeFiles/savat_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/savat_bench_util.dir/bench_util.cc.o.d"
  "libsavat_bench_util.a"
  "libsavat_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
