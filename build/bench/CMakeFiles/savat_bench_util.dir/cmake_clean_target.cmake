file(REMOVE_RECURSE
  "libsavat_bench_util.a"
)
