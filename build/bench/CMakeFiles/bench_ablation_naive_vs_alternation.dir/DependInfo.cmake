
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_naive_vs_alternation.cc" "bench/CMakeFiles/bench_ablation_naive_vs_alternation.dir/ablation_naive_vs_alternation.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_naive_vs_alternation.dir/ablation_naive_vs_alternation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/savat_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/savat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/savat_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/spectrum/CMakeFiles/savat_spectrum.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/savat_em.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/savat_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/savat_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/savat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/savat_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
