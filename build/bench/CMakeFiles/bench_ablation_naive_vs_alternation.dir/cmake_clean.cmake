file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_naive_vs_alternation.dir/ablation_naive_vs_alternation.cc.o"
  "CMakeFiles/bench_ablation_naive_vs_alternation.dir/ablation_naive_vs_alternation.cc.o.d"
  "bench_ablation_naive_vs_alternation"
  "bench_ablation_naive_vs_alternation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_naive_vs_alternation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
