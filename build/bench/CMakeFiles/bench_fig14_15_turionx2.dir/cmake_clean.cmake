file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_15_turionx2.dir/fig14_15_turionx2.cc.o"
  "CMakeFiles/bench_fig14_15_turionx2.dir/fig14_15_turionx2.cc.o.d"
  "bench_fig14_15_turionx2"
  "bench_fig14_15_turionx2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_turionx2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
