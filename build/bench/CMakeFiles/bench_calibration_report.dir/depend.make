# Empty dependencies file for bench_calibration_report.
# This may be replaced when dependencies are built.
