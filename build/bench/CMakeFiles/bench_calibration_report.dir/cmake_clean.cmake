file(REMOVE_RECURSE
  "CMakeFiles/bench_calibration_report.dir/calibration_report.cc.o"
  "CMakeFiles/bench_calibration_report.dir/calibration_report.cc.o.d"
  "bench_calibration_report"
  "bench_calibration_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calibration_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
