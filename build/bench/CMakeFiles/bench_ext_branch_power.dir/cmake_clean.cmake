file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_branch_power.dir/ext_branch_power.cc.o"
  "CMakeFiles/bench_ext_branch_power.dir/ext_branch_power.cc.o.d"
  "bench_ext_branch_power"
  "bench_ext_branch_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_branch_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
