file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rbw_altfreq.dir/ablation_rbw_altfreq.cc.o"
  "CMakeFiles/bench_ablation_rbw_altfreq.dir/ablation_rbw_altfreq.cc.o.d"
  "bench_ablation_rbw_altfreq"
  "bench_ablation_rbw_altfreq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rbw_altfreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
