# Empty dependencies file for bench_ablation_rbw_altfreq.
# This may be replaced when dependencies are built.
