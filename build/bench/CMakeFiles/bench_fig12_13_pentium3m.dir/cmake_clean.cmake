file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_13_pentium3m.dir/fig12_13_pentium3m.cc.o"
  "CMakeFiles/bench_fig12_13_pentium3m.dir/fig12_13_pentium3m.cc.o.d"
  "bench_fig12_13_pentium3m"
  "bench_fig12_13_pentium3m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_13_pentium3m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
