# Empty compiler generated dependencies file for bench_fig12_13_pentium3m.
# This may be replaced when dependencies are built.
