file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_08_spectra.dir/fig07_08_spectra.cc.o"
  "CMakeFiles/bench_fig07_08_spectra.dir/fig07_08_spectra.cc.o.d"
  "bench_fig07_08_spectra"
  "bench_fig07_08_spectra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_08_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
