file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_10_11_core2duo.dir/fig09_10_11_core2duo.cc.o"
  "CMakeFiles/bench_fig09_10_11_core2duo.dir/fig09_10_11_core2duo.cc.o.d"
  "bench_fig09_10_11_core2duo"
  "bench_fig09_10_11_core2duo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_10_11_core2duo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
