# Empty compiler generated dependencies file for bench_fig09_10_11_core2duo.
# This may be replaced when dependencies are built.
