file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_17_18_distance.dir/fig16_17_18_distance.cc.o"
  "CMakeFiles/bench_fig16_17_18_distance.dir/fig16_17_18_distance.cc.o.d"
  "bench_fig16_17_18_distance"
  "bench_fig16_17_18_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_17_18_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
