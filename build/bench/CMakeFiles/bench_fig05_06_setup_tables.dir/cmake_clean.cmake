file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_06_setup_tables.dir/fig05_06_setup_tables.cc.o"
  "CMakeFiles/bench_fig05_06_setup_tables.dir/fig05_06_setup_tables.cc.o.d"
  "bench_fig05_06_setup_tables"
  "bench_fig05_06_setup_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_06_setup_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
