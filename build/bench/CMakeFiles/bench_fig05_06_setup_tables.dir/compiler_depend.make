# Empty compiler generated dependencies file for bench_fig05_06_setup_tables.
# This may be replaced when dependencies are built.
