file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_repeatability.dir/stats_repeatability.cc.o"
  "CMakeFiles/bench_stats_repeatability.dir/stats_repeatability.cc.o.d"
  "bench_stats_repeatability"
  "bench_stats_repeatability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_repeatability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
