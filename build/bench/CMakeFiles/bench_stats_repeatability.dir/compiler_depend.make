# Empty compiler generated dependencies file for bench_stats_repeatability.
# This may be replaced when dependencies are built.
