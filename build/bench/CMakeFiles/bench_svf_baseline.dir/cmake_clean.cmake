file(REMOVE_RECURSE
  "CMakeFiles/bench_svf_baseline.dir/svf_baseline.cc.o"
  "CMakeFiles/bench_svf_baseline.dir/svf_baseline.cc.o.d"
  "bench_svf_baseline"
  "bench_svf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_svf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
