# Empty dependencies file for bench_svf_baseline.
# This may be replaced when dependencies are built.
