file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_sequences.dir/ext_sequences.cc.o"
  "CMakeFiles/bench_ext_sequences.dir/ext_sequences.cc.o.d"
  "bench_ext_sequences"
  "bench_ext_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
