# Empty compiler generated dependencies file for bench_ext_sequences.
# This may be replaced when dependencies are built.
