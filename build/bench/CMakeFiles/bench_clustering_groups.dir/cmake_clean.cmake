file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering_groups.dir/clustering_groups.cc.o"
  "CMakeFiles/bench_clustering_groups.dir/clustering_groups.cc.o.d"
  "bench_clustering_groups"
  "bench_clustering_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
