# Empty dependencies file for bench_clustering_groups.
# This may be replaced when dependencies are built.
