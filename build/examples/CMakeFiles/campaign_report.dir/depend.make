# Empty dependencies file for campaign_report.
# This may be replaced when dependencies are built.
