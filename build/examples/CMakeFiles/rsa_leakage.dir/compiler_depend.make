# Empty compiler generated dependencies file for rsa_leakage.
# This may be replaced when dependencies are built.
