file(REMOVE_RECURSE
  "CMakeFiles/rsa_leakage.dir/rsa_leakage.cpp.o"
  "CMakeFiles/rsa_leakage.dir/rsa_leakage.cpp.o.d"
  "rsa_leakage"
  "rsa_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsa_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
