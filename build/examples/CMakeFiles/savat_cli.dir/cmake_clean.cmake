file(REMOVE_RECURSE
  "CMakeFiles/savat_cli.dir/savat_cli.cpp.o"
  "CMakeFiles/savat_cli.dir/savat_cli.cpp.o.d"
  "savat_cli"
  "savat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/savat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
