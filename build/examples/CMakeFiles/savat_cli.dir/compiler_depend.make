# Empty compiler generated dependencies file for savat_cli.
# This may be replaced when dependencies are built.
