file(REMOVE_RECURSE
  "CMakeFiles/distance_study.dir/distance_study.cpp.o"
  "CMakeFiles/distance_study.dir/distance_study.cpp.o.d"
  "distance_study"
  "distance_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
