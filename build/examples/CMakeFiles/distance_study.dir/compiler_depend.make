# Empty compiler generated dependencies file for distance_study.
# This may be replaced when dependencies are built.
